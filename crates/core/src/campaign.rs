//! Checkpointable scan campaigns for crash-safe supervision.
//!
//! Wraps the §3 scan pipelines as [`Campaign`]s the
//! [`Supervisor`](minedig_primitives::supervise::Supervisor) can kill
//! and resume: the snapshot is the folded outcome so far plus the
//! domain cursor into the population's scan order. Because per-domain
//! verdicts are pure functions of `(seed, domain name, model)` and
//! every backend folds in population order, a resumed campaign is bit
//! for bit identical to an uninterrupted one — the property pinned by
//! `tests/checkpoint_resume.rs`.
//!
//! The snapshot codec below is hand-rolled over
//! [`SnapWriter`]/[`SnapReader`] (no serde in the workspace): enums are
//! encoded as stable small tags (`Category` by its position in
//! [`Category::all`], whose order is part of the format), collections
//! are length-prefixed, and decoding rejects unknown tags rather than
//! guessing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::exec::{chrome_scan_range, zgrab_scan_range};
use crate::scan::{ChromeScanOutcome, DomainRef, FetchModel, FetchStats, ZgrabScanOutcome};
use minedig_nocoin::list::ServiceLabel;
use minedig_primitives::ckpt::{Checkpointable, CkptError, SnapReader, SnapWriter, Snapshot};
use minedig_primitives::supervise::{Backend, Campaign};
use minedig_wasm::{FingerprintCache, SignatureDb};
use minedig_web::{Category, Population, Zone};

// ---------------------------------------------------------------------
// Enum tags. Tag values are part of the on-disk format: append-only.
// ---------------------------------------------------------------------

fn put_zone(w: &mut SnapWriter, zone: Zone) {
    w.u64(match zone {
        Zone::Alexa => 0,
        Zone::Com => 1,
        Zone::Net => 2,
        Zone::Org => 3,
    });
}

fn take_zone(r: &mut SnapReader) -> Result<Zone, CkptError> {
    Ok(match r.u64()? {
        0 => Zone::Alexa,
        1 => Zone::Com,
        2 => Zone::Net,
        3 => Zone::Org,
        _ => return Err(CkptError::Corrupt("unknown zone tag")),
    })
}

fn put_label(w: &mut SnapWriter, label: ServiceLabel) {
    w.u64(match label {
        ServiceLabel::Coinhive => 0,
        ServiceLabel::Authedmine => 1,
        ServiceLabel::WpMonero => 2,
        ServiceLabel::Cryptoloot => 3,
        ServiceLabel::Cpmstar => 4,
        ServiceLabel::JsMiner => 5,
        ServiceLabel::Other => 6,
    });
}

fn take_label(r: &mut SnapReader) -> Result<ServiceLabel, CkptError> {
    Ok(match r.u64()? {
        0 => ServiceLabel::Coinhive,
        1 => ServiceLabel::Authedmine,
        2 => ServiceLabel::WpMonero,
        3 => ServiceLabel::Cryptoloot,
        4 => ServiceLabel::Cpmstar,
        5 => ServiceLabel::JsMiner,
        6 => ServiceLabel::Other,
        _ => return Err(CkptError::Corrupt("unknown service-label tag")),
    })
}

fn put_category(w: &mut SnapWriter, cat: Category) {
    let tag = Category::all()
        .iter()
        .position(|c| *c == cat)
        .expect("Category::all covers every variant");
    w.len(tag);
}

fn take_category(r: &mut SnapReader) -> Result<Category, CkptError> {
    Category::all()
        .get(r.len()?)
        .copied()
        .ok_or(CkptError::Corrupt("unknown category tag"))
}

// ---------------------------------------------------------------------
// Struct codecs.
// ---------------------------------------------------------------------

/// Encodes [`FetchStats`] into `w`.
pub fn put_fetch_stats(w: &mut SnapWriter, f: &FetchStats) {
    w.u64(f.attempted);
    w.u64(f.responded);
    w.u64(f.unreachable);
    w.u64(f.silent);
    w.u64(f.retries);
}

/// Decodes [`FetchStats`] from `r`.
pub fn take_fetch_stats(r: &mut SnapReader) -> Result<FetchStats, CkptError> {
    Ok(FetchStats {
        attempted: r.u64()?,
        responded: r.u64()?,
        unreachable: r.u64()?,
        silent: r.u64()?,
        retries: r.u64()?,
    })
}

fn put_dref(w: &mut SnapWriter, d: &DomainRef) {
    w.str(&d.name);
    w.len(d.categories.len());
    for c in &d.categories {
        put_category(w, *c);
    }
    w.bool(d.obscure);
}

fn take_dref(r: &mut SnapReader) -> Result<DomainRef, CkptError> {
    let name = r.str()?;
    let n = r.len()?;
    let mut categories = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        categories.push(take_category(r)?);
    }
    let obscure = r.bool()?;
    Ok(DomainRef {
        name,
        categories,
        obscure,
    })
}

fn put_refs(w: &mut SnapWriter, refs: &[DomainRef]) {
    w.len(refs.len());
    for d in refs {
        put_dref(w, d);
    }
}

fn take_refs(r: &mut SnapReader) -> Result<Vec<DomainRef>, CkptError> {
    let n = r.len()?;
    let mut refs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        refs.push(take_dref(r)?);
    }
    Ok(refs)
}

/// Encodes a [`ZgrabScanOutcome`] into `w`.
pub fn put_zgrab_outcome(w: &mut SnapWriter, o: &ZgrabScanOutcome) {
    put_zone(w, o.zone);
    w.u64(o.total_domains);
    w.u64(o.hit_domains);
    w.len(o.label_counts.len());
    for (label, count) in &o.label_counts {
        put_label(w, *label);
        w.u64(*count);
    }
    w.u64(o.clean_sample_hits);
    w.u64(o.clean_sample_size);
    put_refs(w, &o.hit_refs);
    put_fetch_stats(w, &o.fetch);
}

/// Decodes a [`ZgrabScanOutcome`] from `r`.
pub fn take_zgrab_outcome(r: &mut SnapReader) -> Result<ZgrabScanOutcome, CkptError> {
    let zone = take_zone(r)?;
    let total_domains = r.u64()?;
    let hit_domains = r.u64()?;
    let n = r.len()?;
    let mut label_counts = BTreeMap::new();
    for _ in 0..n {
        let label = take_label(r)?;
        let count = r.u64()?;
        label_counts.insert(label, count);
    }
    let clean_sample_hits = r.u64()?;
    let clean_sample_size = r.u64()?;
    let hit_refs = take_refs(r)?;
    let fetch = take_fetch_stats(r)?;
    Ok(ZgrabScanOutcome {
        zone,
        total_domains,
        hit_domains,
        label_counts,
        clean_sample_hits,
        clean_sample_size,
        hit_refs,
        fetch,
    })
}

/// Encodes a [`ChromeScanOutcome`] into `w`.
pub fn put_chrome_outcome(w: &mut SnapWriter, o: &ChromeScanOutcome) {
    put_zone(w, o.zone);
    w.u64(o.nocoin_domains);
    w.u64(o.wasm_domains);
    w.u64(o.miner_wasm_domains);
    w.u64(o.blocked_by_nocoin);
    w.u64(o.missed_by_nocoin);
    w.u64(o.nocoin_without_wasm);
    w.len(o.class_counts.len());
    for (class, count) in &o.class_counts {
        w.str(class);
        w.u64(*count);
    }
    w.u64(o.unclassified_wasm);
    w.u64(o.clean_sample_miner_hits);
    put_refs(w, &o.nocoin_refs);
    put_refs(w, &o.miner_refs);
    put_fetch_stats(w, &o.fetch);
}

/// Decodes a [`ChromeScanOutcome`] from `r`.
pub fn take_chrome_outcome(r: &mut SnapReader) -> Result<ChromeScanOutcome, CkptError> {
    let zone = take_zone(r)?;
    let nocoin_domains = r.u64()?;
    let wasm_domains = r.u64()?;
    let miner_wasm_domains = r.u64()?;
    let blocked_by_nocoin = r.u64()?;
    let missed_by_nocoin = r.u64()?;
    let nocoin_without_wasm = r.u64()?;
    let n = r.len()?;
    let mut class_counts = BTreeMap::new();
    for _ in 0..n {
        let class = r.str()?;
        let count = r.u64()?;
        class_counts.insert(class, count);
    }
    let unclassified_wasm = r.u64()?;
    let clean_sample_miner_hits = r.u64()?;
    let nocoin_refs = take_refs(r)?;
    let miner_refs = take_refs(r)?;
    let fetch = take_fetch_stats(r)?;
    Ok(ChromeScanOutcome {
        zone,
        nocoin_domains,
        wasm_domains,
        miner_wasm_domains,
        blocked_by_nocoin,
        missed_by_nocoin,
        nocoin_without_wasm,
        class_counts,
        unclassified_wasm,
        clean_sample_miner_hits,
        nocoin_refs,
        miner_refs,
        fetch,
    })
}

// ---------------------------------------------------------------------
// Campaigns.
// ---------------------------------------------------------------------

/// The zgrab + NoCoin scan as a killable, resumable campaign.
///
/// One item = one domain of the population's scan order (artifacts
/// first, then the clean sample). The cursor is the index of the next
/// unscanned domain; the snapshot is `(cursor, outcome-so-far)`.
pub struct ZgrabCampaign<'a> {
    population: &'a Population,
    seed: u64,
    model: &'a FetchModel,
    backend: Backend,
    outcome: ZgrabScanOutcome,
    cursor: u64,
}

impl<'a> ZgrabCampaign<'a> {
    /// A fresh campaign at cursor 0.
    pub fn new(
        population: &'a Population,
        seed: u64,
        model: &'a FetchModel,
        backend: Backend,
    ) -> ZgrabCampaign<'a> {
        ZgrabCampaign {
            population,
            seed,
            model,
            backend,
            outcome: ZgrabScanOutcome::empty(population.zone),
            cursor: 0,
        }
    }

    fn total_items(&self) -> u64 {
        (self.population.artifacts.len() + self.population.clean_sample.len()) as u64
    }
}

impl Checkpointable for ZgrabCampaign<'_> {
    fn progress_key(&self) -> u64 {
        self.cursor
    }

    fn snapshot(&self) -> Snapshot {
        let mut w = SnapWriter::new();
        w.u64(self.cursor);
        put_zgrab_outcome(&mut w, &self.outcome);
        Snapshot::new(self.cursor, w.finish())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), CkptError> {
        let mut r = SnapReader::new(&snapshot.payload);
        let cursor = r.u64()?;
        let outcome = take_zgrab_outcome(&mut r)?;
        r.expect_end()?;
        if outcome.zone != self.population.zone {
            return Err(CkptError::Corrupt("snapshot is for a different zone"));
        }
        if cursor > self.total_items() {
            return Err(CkptError::Corrupt("cursor beyond population"));
        }
        self.cursor = cursor;
        self.outcome = outcome;
        Ok(())
    }
}

impl Campaign for ZgrabCampaign<'_> {
    type Output = ZgrabScanOutcome;

    fn is_done(&self) -> bool {
        self.cursor >= self.total_items()
    }

    fn run_items(&mut self, budget: u64, heartbeat: &AtomicU64) {
        let end = (self.cursor + budget).min(self.total_items());
        if end == self.cursor {
            return;
        }
        let partial = zgrab_scan_range(
            self.population,
            self.cursor as usize..end as usize,
            self.seed,
            self.model,
            &self.backend,
        );
        self.outcome.merge(partial);
        heartbeat.fetch_add(end - self.cursor, Ordering::Relaxed);
        self.cursor = end;
    }

    fn finish(mut self) -> ZgrabScanOutcome {
        self.outcome.total_domains = self.population.total;
        self.outcome
    }
}

/// The instrumented-browser scan as a killable, resumable campaign —
/// the Chrome counterpart of [`ZgrabCampaign`], with the same
/// cursor-plus-outcome snapshot.
pub struct ChromeCampaign<'a> {
    population: &'a Population,
    db: &'a SignatureDb,
    seed: u64,
    model: &'a FetchModel,
    cache: Option<&'a FingerprintCache>,
    backend: Backend,
    outcome: ChromeScanOutcome,
    cursor: u64,
}

impl<'a> ChromeCampaign<'a> {
    /// A fresh campaign at cursor 0. `cache` is used by the streaming
    /// and async backends (the sharded kernel keeps its own path).
    pub fn new(
        population: &'a Population,
        db: &'a SignatureDb,
        seed: u64,
        model: &'a FetchModel,
        cache: Option<&'a FingerprintCache>,
        backend: Backend,
    ) -> ChromeCampaign<'a> {
        ChromeCampaign {
            population,
            db,
            seed,
            model,
            cache,
            backend,
            outcome: ChromeScanOutcome::empty(population.zone),
            cursor: 0,
        }
    }

    fn total_items(&self) -> u64 {
        (self.population.artifacts.len() + self.population.clean_sample.len()) as u64
    }
}

impl Checkpointable for ChromeCampaign<'_> {
    fn progress_key(&self) -> u64 {
        self.cursor
    }

    fn snapshot(&self) -> Snapshot {
        let mut w = SnapWriter::new();
        w.u64(self.cursor);
        put_chrome_outcome(&mut w, &self.outcome);
        Snapshot::new(self.cursor, w.finish())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), CkptError> {
        let mut r = SnapReader::new(&snapshot.payload);
        let cursor = r.u64()?;
        let outcome = take_chrome_outcome(&mut r)?;
        r.expect_end()?;
        if outcome.zone != self.population.zone {
            return Err(CkptError::Corrupt("snapshot is for a different zone"));
        }
        if cursor > self.total_items() {
            return Err(CkptError::Corrupt("cursor beyond population"));
        }
        self.cursor = cursor;
        self.outcome = outcome;
        Ok(())
    }
}

impl Campaign for ChromeCampaign<'_> {
    type Output = ChromeScanOutcome;

    fn is_done(&self) -> bool {
        self.cursor >= self.total_items()
    }

    fn run_items(&mut self, budget: u64, heartbeat: &AtomicU64) {
        let end = (self.cursor + budget).min(self.total_items());
        if end == self.cursor {
            return;
        }
        let partial = chrome_scan_range(
            self.population,
            self.cursor as usize..end as usize,
            self.db,
            self.seed,
            self.model,
            self.cache,
            &self.backend,
        );
        self.outcome.merge(partial);
        heartbeat.fetch_add(end - self.cursor, Ordering::Relaxed);
        self.cursor = end;
    }

    fn finish(self) -> ChromeScanOutcome {
        self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{build_reference_db, chrome_scan, zgrab_scan};
    use minedig_primitives::ckpt::SnapshotStore;
    use minedig_primitives::supervise::{CrashPolicy, Supervisor};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("minedig-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn zgrab_outcome_codec_roundtrips() {
        let pop = Population::generate(Zone::Org, 11, 25);
        let outcome = zgrab_scan(&pop, 11);
        let mut w = SnapWriter::new();
        put_zgrab_outcome(&mut w, &outcome);
        let payload = w.finish();
        let mut r = SnapReader::new(&payload);
        let back = take_zgrab_outcome(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, outcome);
    }

    #[test]
    fn chrome_outcome_codec_roundtrips() {
        let pop = Population::generate(Zone::Net, 12, 25);
        let db = build_reference_db(0.7);
        let outcome = chrome_scan(&pop, &db, 12);
        let mut w = SnapWriter::new();
        put_chrome_outcome(&mut w, &outcome);
        let payload = w.finish();
        let mut r = SnapReader::new(&payload);
        let back = take_chrome_outcome(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, outcome);
    }

    #[test]
    fn supervised_zgrab_with_kills_matches_uninterrupted() {
        let pop = Population::generate(Zone::Org, 42, 40);
        let model = FetchModel::default();
        let expected = zgrab_scan(&pop, 1);
        let dir = tmpdir("zgrab");
        let store = SnapshotStore::open(&dir).unwrap();
        let sup = Supervisor::new(CrashPolicy {
            ckpt_every_items: 16,
            ..CrashPolicy::default()
        })
        .with_kills(vec![3, 20, 33]);
        let run = sup
            .run(
                &store,
                "zgrab-org",
                || ZgrabCampaign::new(&pop, 1, &model, Backend::Sequential),
                false,
            )
            .unwrap();
        assert_eq!(run.output, expected);
        assert_eq!(run.report.crashes, 3);
        assert!(run.report.balanced(), "{:?}", run.report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervised_chrome_with_kills_matches_uninterrupted_on_every_backend() {
        let pop = Population::generate(Zone::Org, 42, 30);
        let db = build_reference_db(0.7);
        let model = FetchModel::default();
        let expected = chrome_scan(&pop, &db, 1);
        for backend in [
            Backend::Sequential,
            Backend::Sharded(3),
            Backend::Streaming {
                workers: 2,
                capacity: 8,
            },
            Backend::Async { concurrency: 16 },
        ] {
            let dir = tmpdir(&format!("chrome-{}", backend.label()));
            let store = SnapshotStore::open(&dir).unwrap();
            let sup = Supervisor::new(CrashPolicy {
                ckpt_every_items: 8,
                ..CrashPolicy::default()
            })
            .with_kills(vec![5, 19]);
            let run = sup
                .run(
                    &store,
                    "chrome-org",
                    || ChromeCampaign::new(&pop, &db, 1, &model, None, backend),
                    false,
                )
                .unwrap();
            assert_eq!(run.output, expected, "backend={}", backend.label());
            assert!(run.report.balanced(), "{:?}", run.report);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn restore_rejects_a_snapshot_from_another_zone() {
        let org = Population::generate(Zone::Org, 7, 10);
        let net = Population::generate(Zone::Net, 7, 10);
        let model = FetchModel::default();
        let mut a = ZgrabCampaign::new(&org, 1, &model, Backend::Sequential);
        a.run_items(5, &AtomicU64::new(0));
        let snap = a.snapshot();
        let mut b = ZgrabCampaign::new(&net, 1, &model, Backend::Sequential);
        assert!(matches!(b.restore(&snap), Err(CkptError::Corrupt(_))));
    }
}
