#![warn(missing_docs)]
//! `minedig-core`: the paper's methodology as a clean public API.
//!
//! *Digging into Browser-based Crypto Mining* (Rüth et al., IMC 2018)
//! makes three measurements; this crate exposes each as a pipeline over
//! the workspace's substrates:
//!
//! * [`scan`] — §3's prevalence measurements: the zgrab + NoCoin static
//!   scan over whole zones and the instrumented-browser scan with Wasm
//!   fingerprinting, plus the cross-tabulation showing how much the block
//!   list misses (Fig 2, Tables 1–3),
//! * [`exec`] — the scan execution backends: the parallel sharded
//!   executor, the streaming pipeline, and the cooperative async
//!   fan-out — all bit-identical to the sequential pass,
//! * [`attribute`] — §4.2's blockchain attribution with paper-calibrated
//!   scenario presets (Fig 5, Table 6),
//! * [`shortlink_study`] — §4.1's enumeration/resolution study of the
//!   link-forwarding service (Figs 3–4, Tables 4–5),
//! * [`report`] — paper-vs-measured comparison tables and simple text
//!   renderings of figure series (used by the `minedig-bench` binaries
//!   and recorded in EXPERIMENTS.md).
//!
//! ## Quickstart
//!
//! ```
//! use minedig_core::scan::{build_reference_db, chrome_scan};
//! use minedig_web::{Population, Zone};
//!
//! // A miniature .org zone (tiny clean sample for the doctest).
//! let population = Population::generate(Zone::Org, 7, 5);
//! let db = build_reference_db(0.7);
//! let outcome = chrome_scan(&population, &db, 7);
//! // The fingerprint approach finds far more miners than the list.
//! assert!(outcome.miner_wasm_domains > outcome.blocked_by_nocoin);
//! ```

pub mod attribute;
pub mod campaign;
pub mod exec;
pub mod report;
pub mod scan;
pub mod shortlink_study;

pub use campaign::{ChromeCampaign, ZgrabCampaign};
pub use exec::{
    chrome_scan_async, chrome_scan_range, chrome_scan_streaming, zgrab_scan_async,
    zgrab_scan_range, zgrab_scan_streaming, ScanExecutor, ScanRun, ScanStats,
};
pub use report::Comparison;
pub use scan::{
    build_reference_db, chrome_scan, chrome_scan_with, zgrab_scan, zgrab_scan_with,
    ChromeScanOutcome, FetchModel, FetchStats, ZgrabScanOutcome,
};
pub use shortlink_study::{
    run_study, run_study_async, run_study_streaming, run_study_supervised, AsyncStudy,
    StreamingStudy, StudyConfig, SupervisedStudy,
};
