//! Paper-vs-measured reporting used by the reproduction binaries.

use crate::exec::ScanStats;
use crate::scan::FetchStats;

/// One compared quantity.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// What is being compared.
    pub label: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction measured.
    pub measured: f64,
}

impl Comparison {
    /// Builds a comparison row.
    pub fn new(label: &str, paper: f64, measured: f64) -> Comparison {
        Comparison {
            label: label.to_string(),
            paper,
            measured,
        }
    }

    /// Relative delta in percent (positive = measured higher).
    pub fn delta_pct(&self) -> f64 {
        if self.paper == 0.0 {
            return if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.measured - self.paper) / self.paper * 100.0
    }
}

/// Renders comparison rows as an aligned text table.
pub fn comparison_table(title: &str, rows: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let width = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(10)
        .max(10);
    out.push_str(&format!(
        "{:<width$} {:>14} {:>14} {:>9}\n",
        "metric", "paper", "measured", "delta"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<width$} {:>14} {:>14} {:>8.1}%\n",
            r.label,
            format_value(r.paper),
            format_value(r.measured),
            r.delta_pct()
        ));
    }
    out
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v.abs() >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v.abs() >= 10_000.0 {
        format!("{:.1}k", v / 1e3)
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders an `(x, count)` series as a text bar chart (log-ish scaling),
/// used to print figure panels.
pub fn bar_chart(title: &str, series: &[(String, f64)], max_width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("-- {title} --\n"));
    let max = series.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(4);
    for (label, value) in series {
        let bar_len = if max > 0.0 {
            ((value / max) * max_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} {:>12} |{}\n",
            format_value(*value),
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders one executed scan's [`ScanStats`] as a compact summary line
/// plus a per-shard breakdown, e.g.
///
/// ```text
/// scan: 4 shards, 1250 domains in 0.42s (2976 domains/s)
///   shard 0: 313 domains in 0.40s
/// ```
pub fn scan_stats(label: &str, stats: &ScanStats) -> String {
    let mut out = format!(
        "{label}: {} shard{}, {} domains in {:.2}s ({:.0} domains/s)\n",
        stats.shards,
        if stats.shards == 1 { "" } else { "s" },
        stats.items,
        stats.elapsed.as_secs_f64(),
        stats.items_per_sec(),
    );
    if stats.shards > 1 {
        for s in &stats.per_shard {
            out.push_str(&format!(
                "  shard {}: {} domains in {:.2}s\n",
                s.shard,
                s.items,
                s.elapsed.as_secs_f64()
            ));
        }
    }
    out
}

/// Renders one scan's [`FetchStats`] as a Table 1-style response-rate
/// line, e.g.
///
/// ```text
/// zgrab .org: 1250 attempted, 980 responded (78.4%), 30 unreachable, 240 silent, 45 retries
/// ```
///
/// The retry tail is omitted when no transport model was active.
pub fn fetch_stats(label: &str, stats: &FetchStats) -> String {
    let mut out = format!(
        "{label}: {} attempted, {} responded ({:.1}%), {} unreachable, {} silent",
        stats.attempted,
        stats.responded,
        stats.response_rate() * 100.0,
        stats.unreachable,
        stats.silent,
    );
    if stats.retries > 0 {
        out.push_str(&format!(", {} retries", stats.retries));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ShardStats;
    use std::time::Duration;

    #[test]
    fn delta_computation() {
        let c = Comparison::new("x", 100.0, 110.0);
        assert!((c.delta_pct() - 10.0).abs() < 1e-9);
        let z = Comparison::new("z", 0.0, 0.0);
        assert_eq!(z.delta_pct(), 0.0);
        assert!(Comparison::new("w", 0.0, 1.0).delta_pct().is_infinite());
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            Comparison::new("alpha", 1.0, 1.1),
            Comparison::new("beta-very-long-label", 2e9, 2.2e9),
        ];
        let t = comparison_table("Test", &rows);
        assert!(t.contains("alpha"));
        assert!(t.contains("beta-very-long-label"));
        assert!(t.contains("2.00G"));
        assert!(t.contains("10.0%"));
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(55_400_000_000.0), "55.40G");
        assert_eq!(format_value(5_500_000.0), "5.50M");
        assert_eq!(format_value(85_000.0), "85.0k");
        assert_eq!(format_value(737.0), "737");
        assert_eq!(format_value(1.18), "1.18");
        assert_eq!(format_value(0.0118), "0.0118");
    }

    #[test]
    fn scan_stats_renders_summary_and_shards() {
        let stats = ScanStats {
            shards: 2,
            items: 100,
            elapsed: Duration::from_millis(500),
            per_shard: vec![
                ShardStats {
                    shard: 0,
                    items: 50,
                    elapsed: Duration::from_millis(480),
                },
                ShardStats {
                    shard: 1,
                    items: 50,
                    elapsed: Duration::from_millis(460),
                },
            ],
        };
        let text = scan_stats("chrome .org", &stats);
        assert!(text.contains("2 shards, 100 domains"));
        assert!(text.contains("(200 domains/s)"));
        assert!(text.contains("shard 1: 50 domains"));
        // Single-shard runs stay to one line.
        let single = ScanStats {
            shards: 1,
            items: 10,
            elapsed: Duration::from_millis(100),
            per_shard: vec![ShardStats {
                shard: 0,
                items: 10,
                elapsed: Duration::from_millis(100),
            }],
        };
        assert_eq!(scan_stats("zgrab", &single).lines().count(), 1);
    }

    #[test]
    fn fetch_stats_renders_response_rate() {
        let stats = FetchStats {
            attempted: 1250,
            responded: 980,
            unreachable: 30,
            silent: 240,
            retries: 45,
        };
        let text = fetch_stats("zgrab .org", &stats);
        assert!(text.contains("1250 attempted"));
        assert!(text.contains("980 responded (78.4%)"));
        assert!(text.contains("30 unreachable"));
        assert!(text.contains("45 retries"));
        // No retry tail when no transport model was active.
        let clean = FetchStats {
            attempted: 10,
            responded: 10,
            ..FetchStats::default()
        };
        assert!(!fetch_stats("x", &clean).contains("retries"));
    }

    #[test]
    fn bar_chart_scales() {
        let series = vec![
            ("a".to_string(), 10.0),
            ("bb".to_string(), 5.0),
            ("ccc".to_string(), 0.0),
        ];
        let chart = bar_chart("demo", &series, 20);
        assert!(chart.contains(&"#".repeat(20)));
        assert!(chart.contains(&"#".repeat(10)));
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
