//! Paper-vs-measured reporting used by the reproduction binaries.

use crate::exec::ScanStats;
use crate::scan::FetchStats;
use minedig_analysis::poller::PollStats;
use minedig_primitives::aexec::AsyncStats;
use minedig_primitives::health::{HealthStats, ShedStats};
use minedig_primitives::pipeline::PipelineStats;
use minedig_primitives::supervise::SuperviseReport;
use minedig_shortlink::enumerate::Enumeration;

/// One compared quantity.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// What is being compared.
    pub label: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction measured.
    pub measured: f64,
}

impl Comparison {
    /// Builds a comparison row.
    pub fn new(label: &str, paper: f64, measured: f64) -> Comparison {
        Comparison {
            label: label.to_string(),
            paper,
            measured,
        }
    }

    /// Relative delta in percent (positive = measured higher).
    pub fn delta_pct(&self) -> f64 {
        if self.paper == 0.0 {
            return if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.measured - self.paper) / self.paper * 100.0
    }
}

/// Renders comparison rows as an aligned text table.
pub fn comparison_table(title: &str, rows: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let width = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(10)
        .max(10);
    out.push_str(&format!(
        "{:<width$} {:>14} {:>14} {:>9}\n",
        "metric", "paper", "measured", "delta"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<width$} {:>14} {:>14} {:>8.1}%\n",
            r.label,
            format_value(r.paper),
            format_value(r.measured),
            r.delta_pct()
        ));
    }
    out
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v.abs() >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v.abs() >= 10_000.0 {
        format!("{:.1}k", v / 1e3)
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders an `(x, count)` series as a text bar chart (log-ish scaling),
/// used to print figure panels.
pub fn bar_chart(title: &str, series: &[(String, f64)], max_width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("-- {title} --\n"));
    let max = series.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(4);
    for (label, value) in series {
        let bar_len = if max > 0.0 {
            ((value / max) * max_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} {:>12} |{}\n",
            format_value(*value),
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders one executed scan's [`ScanStats`] as a compact summary line
/// plus a per-shard breakdown, e.g.
///
/// ```text
/// scan: 4 shards, 1250 domains in 0.42s (2976 domains/s)
///   shard 0: 313 domains in 0.40s
/// ```
pub fn scan_stats(label: &str, stats: &ScanStats) -> String {
    let mut out = format!(
        "{label}: {} shard{}, {} domains in {:.2}s ({:.0} domains/s)\n",
        stats.shards,
        if stats.shards == 1 { "" } else { "s" },
        stats.items,
        stats.elapsed.as_secs_f64(),
        stats.items_per_sec(),
    );
    if stats.shards > 1 {
        for s in &stats.per_shard {
            out.push_str(&format!(
                "  shard {}: {} domains in {:.2}s\n",
                s.shard,
                s.items,
                s.elapsed.as_secs_f64()
            ));
        }
    }
    out
}

/// Renders one scan's [`FetchStats`] as a Table 1-style response-rate
/// line, e.g.
///
/// ```text
/// zgrab .org: 1250 attempted, 980 responded (78.4%), 30 unreachable, 240 silent, 45 retries
/// ```
///
/// The retry tail is omitted when no transport model was active.
pub fn fetch_stats(label: &str, stats: &FetchStats) -> String {
    let mut out = format!(
        "{label}: {} attempted, {} responded ({:.1}%), {} unreachable, {} silent",
        stats.attempted,
        stats.responded,
        stats.response_rate() * 100.0,
        stats.unreachable,
        stats.silent,
    );
    if stats.retries > 0 {
        out.push_str(&format!(", {} retries", stats.retries));
    }
    out.push('\n');
    out
}

/// One measurement campaign's transport-health counters, normalized
/// into common columns so the zone scans, the link-space enumeration and
/// the pool polling can sit side by side in one table.
///
/// The mapping per source:
/// * fetch campaigns — `succeeded` counts every domain the transport
///   reached (responding *or* silent; silence is a property of the
///   population, not degradation), `lost` the retry-exhausted ones;
/// * enumeration — `lost` is the probes that exhausted their retries
///   (neutral to the dead run, but gone from the dataset);
/// * polling — `lost` is outage-refused polls plus endpoint-sweeps that
///   exhausted their retries.
#[derive(Clone, Debug)]
pub struct CampaignHealth {
    /// Campaign label, e.g. `"zgrab .org"`.
    pub campaign: String,
    /// Units of work attempted (fetches, probes, polls).
    pub attempted: u64,
    /// Units the transport delivered a usable observation for.
    pub succeeded: u64,
    /// Units permanently lost to transport degradation.
    pub lost: u64,
    /// Transient faults recovered by retrying.
    pub retries: u64,
    /// Connections re-established after teardowns.
    pub reconnects: u64,
    /// Units refused up front by a tripped circuit breaker (no budget
    /// spent); only pool polling runs behind the health layer today.
    pub quarantined: u64,
}

impl CampaignHealth {
    /// Health row of a scan's fetch campaign.
    pub fn from_fetch(campaign: &str, stats: &FetchStats) -> CampaignHealth {
        CampaignHealth {
            campaign: campaign.to_string(),
            attempted: stats.attempted,
            succeeded: stats.responded + stats.silent,
            lost: stats.unreachable,
            retries: stats.retries,
            reconnects: 0,
            quarantined: 0,
        }
    }

    /// Health row of a link-space enumeration.
    pub fn from_enumeration(campaign: &str, e: &Enumeration) -> CampaignHealth {
        CampaignHealth {
            campaign: campaign.to_string(),
            attempted: e.probed,
            succeeded: e.probed - e.failed_probes,
            lost: e.failed_probes,
            retries: e.probe_retries,
            reconnects: 0,
            quarantined: 0,
        }
    }

    /// Health row of a pool-polling campaign.
    pub fn from_polls(campaign: &str, stats: &PollStats) -> CampaignHealth {
        CampaignHealth {
            campaign: campaign.to_string(),
            attempted: stats.polls,
            succeeded: stats.answered,
            lost: stats.offline + stats.endpoints_down,
            retries: stats.retries,
            reconnects: stats.reconnects,
            quarantined: stats.quarantined,
        }
    }

    /// Fraction of attempted units permanently lost.
    pub fn loss_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.lost as f64 / self.attempted as f64
        }
    }
}

/// Renders campaign health rows as one aligned cross-campaign table —
/// the single place to read how much every measurement lost to (or
/// recovered from) transport degradation.
pub fn degradation_summary(rows: &[CampaignHealth]) -> String {
    let mut out = String::new();
    out.push_str("== campaign degradation ==\n");
    let width = rows
        .iter()
        .map(|r| r.campaign.len())
        .max()
        .unwrap_or(8)
        .max(8);
    out.push_str(&format!(
        "{:<width$} {:>10} {:>10} {:>8} {:>8} {:>10} {:>11} {:>7}\n",
        "campaign",
        "attempted",
        "succeeded",
        "lost",
        "retries",
        "reconnects",
        "quarantined",
        "loss"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<width$} {:>10} {:>10} {:>8} {:>8} {:>10} {:>11} {:>6.2}%\n",
            r.campaign,
            r.attempted,
            r.succeeded,
            r.lost,
            r.retries,
            r.reconnects,
            r.quarantined,
            r.loss_rate() * 100.0
        ));
    }
    out
}

/// Renders a streaming run's [`PipelineStats`] as a summary line plus a
/// per-stage breakdown with occupancy, steals and backpressure, and the
/// hop/batch accounting, e.g.
///
/// ```text
/// enumerate: 4 workers ×1 stage, 50256 items in 0.42s (119657 items/s), overlapped
///   batch 16: 6303 messages, 16.0 items/msg, ~14.2ms hop time saved
///   stage 0: 50412 items, occupancy 63%, 118 steals, 2 backpressure waits
///   sink:    50256 items, occupancy 22%
/// ```
pub fn pipeline_stats(label: &str, stats: &PipelineStats) -> String {
    let mut out = format!(
        "{label}: {} worker{} ×{} stage{}, {} items in {:.2}s ({:.0} items/s), {}\n",
        stats.workers,
        if stats.workers == 1 { "" } else { "s" },
        stats.stages.len(),
        if stats.stages.len() == 1 { "" } else { "s" },
        stats.items,
        stats.elapsed.as_secs_f64(),
        stats.items_per_sec(),
        if stats.strictly_overlapped() {
            "overlapped"
        } else {
            "serialized"
        },
    );
    out.push_str(&format!(
        "  batch {}: {} messages, {:.1} items/msg, ~{:.1}ms hop time saved\n",
        stats.batch,
        stats.messages,
        stats.items_per_message(),
        stats.hop_ns_saved() as f64 / 1e6,
    ));
    for s in &stats.stages {
        out.push_str(&format!(
            "  stage {}: {} items, occupancy {:.0}%, {} steals, {} backpressure waits\n",
            s.stage,
            s.items,
            s.occupancy(stats.elapsed) * 100.0,
            s.steals,
            s.backpressure_waits,
        ));
    }
    out.push_str(&format!(
        "  sink:    {} items, occupancy {:.0}%\n",
        stats.sink.items,
        stats.sink.occupancy(stats.elapsed) * 100.0,
    ));
    out
}

/// Renders one async run's [`AsyncStats`], e.g.
///
/// ```text
/// zgrab .org async: 256 in flight budget (high water 256), 1250 tasks in 0.31s (4032 tasks/s)
///   12890 polls, 11640 wakeups, 1250 timer fires, 0 io repolls, 81250ms virtual latency
/// ```
pub fn async_stats(label: &str, stats: &AsyncStats) -> String {
    let mut out = format!(
        "{label}: {} in flight budget (high water {}), {} tasks in {:.2}s ({:.0} tasks/s)\n",
        stats.concurrency,
        stats.in_flight_high_water,
        stats.completed,
        stats.elapsed.as_secs_f64(),
        stats.tasks_per_sec(),
    );
    out.push_str(&format!(
        "  {} polls, {} wakeups, {} timer fires, {} io repolls, {}ms virtual latency\n",
        stats.polls, stats.wakeups, stats.timer_fires, stats.io_repolls, stats.virtual_ms,
    ));
    out
}

/// Renders the aggregate of many async poll sweeps (one per scenario
/// interval), e.g.
///
/// ```text
/// pool polling (async): 13440 endpoint fetches across 420 sweeps, sweep high water 32 on one thread
///   57812 polls, 44110 wakeups, 902 io repolls
/// ```
pub fn async_poll_summary(label: &str, sweeps: u64, stats: &AsyncStats) -> String {
    let mut out = format!(
        "{label}: {} endpoint fetches across {} sweeps, sweep high water {} on one thread\n",
        stats.completed, sweeps, stats.in_flight_high_water,
    );
    out.push_str(&format!(
        "  {} polls, {} wakeups, {} io repolls\n",
        stats.polls, stats.wakeups, stats.io_repolls,
    ));
    out
}

/// Renders a supervised run's crash/checkpoint accounting, e.g.
///
/// ```text
/// zgrab .org (supervised): 1050 items over 4 attempts (3 crashes, 0 stall restarts)
///   17 checkpoints (8531 bytes last), 42 items lost to crashes, 1008 before crash + 42 after resume [balanced]
/// ```
pub fn checkpoint_summary(label: &str, report: &SuperviseReport) -> String {
    let mut out = format!(
        "{label}: {} items over {} attempts ({} crashes, {} stall restarts)\n",
        report.items_executed(),
        report.attempts,
        report.crashes,
        report.stall_restarts,
    );
    out.push_str(&format!(
        "  {} checkpoints ({} bytes last), {} items lost to crashes, {} before crash + {} after resume [{}]\n",
        report.checkpoints,
        report.snapshot_bytes,
        report.items_lost,
        report.items_before_crash,
        report.items_after_resume,
        if report.balanced() {
            "balanced"
        } else {
            "UNBALANCED"
        },
    ));
    out
}

/// Renders the endpoint-health layer's breaker and hedge accounting, e.g.
///
/// ```text
/// pool health: 13440 breaker checks, 310 quarantined, 8 trips, 9 probes (7 closes, 2 reopens)
///   now: 1 open, 0 half-open; hedges: 86 launched, 31 won [balanced]
/// ```
pub fn health_summary(label: &str, stats: &HealthStats) -> String {
    let b = &stats.breaker;
    let mut out = format!(
        "{label}: {} breaker checks, {} quarantined, {} trips, {} probes ({} closes, {} reopens)\n",
        b.checks, b.quarantined, b.trips, b.probes, b.closes, b.reopens,
    );
    out.push_str(&format!(
        "  now: {} open, {} half-open; hedges: {} launched, {} won [{}]\n",
        stats.open_now,
        stats.half_open_now,
        stats.hedges,
        stats.hedge_wins,
        if stats.balanced() {
            "balanced"
        } else {
            "UNBALANCED"
        },
    ));
    out
}

/// Renders a server's admission-control accounting, e.g.
///
/// ```text
/// pool admission: 512 offered, 480 accepted, 20 queued (high water 6), 12 shed (2.3%)
/// ```
pub fn shed_summary(label: &str, stats: &ShedStats) -> String {
    let shed_pct = if stats.offered == 0 {
        0.0
    } else {
        stats.shed as f64 / stats.offered as f64 * 100.0
    };
    format!(
        "{label}: {} offered, {} accepted, {} queued (high water {}), {} shed ({:.1}%){}\n",
        stats.offered,
        stats.accepted,
        stats.queued,
        stats.queue_high_water,
        stats.shed,
        shed_pct,
        if stats.balanced() {
            ""
        } else {
            " [UNBALANCED]"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ShardStats;
    use std::time::Duration;

    #[test]
    fn delta_computation() {
        let c = Comparison::new("x", 100.0, 110.0);
        assert!((c.delta_pct() - 10.0).abs() < 1e-9);
        let z = Comparison::new("z", 0.0, 0.0);
        assert_eq!(z.delta_pct(), 0.0);
        assert!(Comparison::new("w", 0.0, 1.0).delta_pct().is_infinite());
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            Comparison::new("alpha", 1.0, 1.1),
            Comparison::new("beta-very-long-label", 2e9, 2.2e9),
        ];
        let t = comparison_table("Test", &rows);
        assert!(t.contains("alpha"));
        assert!(t.contains("beta-very-long-label"));
        assert!(t.contains("2.00G"));
        assert!(t.contains("10.0%"));
    }

    #[test]
    fn async_poll_summary_renders_aggregate() {
        let stats = AsyncStats {
            concurrency: 64,
            tasks: 13_440,
            completed: 13_440,
            in_flight_high_water: 32,
            polls: 57_812,
            wakeups: 44_110,
            io_repolls: 902,
            ..AsyncStats::default()
        };
        let text = async_poll_summary("pool polling (async)", 420, &stats);
        assert!(text.contains("13440 endpoint fetches across 420 sweeps"));
        assert!(text.contains("sweep high water 32 on one thread"));
        assert!(text.contains("57812 polls, 44110 wakeups, 902 io repolls"));
    }

    #[test]
    fn checkpoint_summary_renders_accounting() {
        let report = SuperviseReport {
            attempts: 4,
            crashes: 3,
            checkpoints: 17,
            snapshot_bytes: 8_531,
            items_before_crash: 1_008,
            items_after_resume: 42,
            items_lost: 42,
            start_progress: 0,
            final_progress: 1_008,
            ..SuperviseReport::default()
        };
        let text = checkpoint_summary("zgrab .org (supervised)", &report);
        assert!(text.contains("1050 items over 4 attempts (3 crashes, 0 stall restarts)"));
        assert!(text.contains("17 checkpoints (8531 bytes last)"));
        assert!(text.contains("[balanced]"), "{text}");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(55_400_000_000.0), "55.40G");
        assert_eq!(format_value(5_500_000.0), "5.50M");
        assert_eq!(format_value(85_000.0), "85.0k");
        assert_eq!(format_value(737.0), "737");
        assert_eq!(format_value(1.18), "1.18");
        assert_eq!(format_value(0.0118), "0.0118");
    }

    #[test]
    fn scan_stats_renders_summary_and_shards() {
        let stats = ScanStats {
            shards: 2,
            items: 100,
            elapsed: Duration::from_millis(500),
            per_shard: vec![
                ShardStats {
                    shard: 0,
                    items: 50,
                    elapsed: Duration::from_millis(480),
                },
                ShardStats {
                    shard: 1,
                    items: 50,
                    elapsed: Duration::from_millis(460),
                },
            ],
        };
        let text = scan_stats("chrome .org", &stats);
        assert!(text.contains("2 shards, 100 domains"));
        assert!(text.contains("(200 domains/s)"));
        assert!(text.contains("shard 1: 50 domains"));
        // Single-shard runs stay to one line.
        let single = ScanStats {
            shards: 1,
            items: 10,
            elapsed: Duration::from_millis(100),
            per_shard: vec![ShardStats {
                shard: 0,
                items: 10,
                elapsed: Duration::from_millis(100),
            }],
        };
        assert_eq!(scan_stats("zgrab", &single).lines().count(), 1);
    }

    #[test]
    fn fetch_stats_renders_response_rate() {
        let stats = FetchStats {
            attempted: 1250,
            responded: 980,
            unreachable: 30,
            silent: 240,
            retries: 45,
        };
        let text = fetch_stats("zgrab .org", &stats);
        assert!(text.contains("1250 attempted"));
        assert!(text.contains("980 responded (78.4%)"));
        assert!(text.contains("30 unreachable"));
        assert!(text.contains("45 retries"));
        // No retry tail when no transport model was active.
        let clean = FetchStats {
            attempted: 10,
            responded: 10,
            ..FetchStats::default()
        };
        assert!(!fetch_stats("x", &clean).contains("retries"));
    }

    #[test]
    fn degradation_rows_normalize_all_three_sources() {
        let fetch = CampaignHealth::from_fetch(
            "zgrab .org",
            &FetchStats {
                attempted: 1250,
                responded: 980,
                unreachable: 30,
                silent: 240,
                retries: 45,
            },
        );
        assert_eq!(fetch.succeeded, 1220, "silent domains were reached");
        assert_eq!(fetch.lost, 30);
        assert!((fetch.loss_rate() - 0.024).abs() < 1e-9);

        let e = Enumeration {
            docs: Vec::new(),
            probed: 5_064,
            failed_probes: 12,
            probe_retries: 88,
        };
        let enum_row = CampaignHealth::from_enumeration("shortlink enum", &e);
        assert_eq!(enum_row.attempted, 5_064);
        assert_eq!(enum_row.succeeded, 5_052);
        assert_eq!(enum_row.retries, 88);

        let polls = CampaignHealth::from_polls(
            "pool polling",
            &PollStats {
                polls: 10_000,
                answered: 9_700,
                offline: 200,
                endpoints_down: 100,
                retries: 340,
                reconnects: 17,
                quarantined: 25,
                ..PollStats::default()
            },
        );
        assert_eq!(polls.lost, 300, "outages + exhausted endpoints");
        assert_eq!(polls.reconnects, 17);
        assert_eq!(polls.quarantined, 25, "breaker-refused sweeps surface");

        let table = degradation_summary(&[fetch, enum_row, polls]);
        assert!(table.contains("campaign"));
        assert!(table.contains("zgrab .org"));
        assert!(table.contains("shortlink enum"));
        assert!(table.contains("pool polling"));
        assert!(table.contains("quarantined"));
        assert!(table.contains("2.40%"));
        assert_eq!(table.lines().count(), 5, "header line + 3 rows + title");
    }

    #[test]
    fn health_summary_renders_breaker_and_hedges() {
        use minedig_primitives::health::BreakerStats;
        let stats = HealthStats {
            breaker: BreakerStats {
                checks: 13_440,
                allowed: 13_130,
                quarantined: 310,
                trips: 8,
                probes: 9,
                reopens: 2,
                closes: 7,
            },
            hedges: 86,
            hedge_wins: 31,
            open_now: 1,
            half_open_now: 0,
        };
        let text = health_summary("pool health", &stats);
        assert!(text.contains("13440 breaker checks, 310 quarantined, 8 trips"));
        assert!(text.contains("9 probes (7 closes, 2 reopens)"));
        assert!(text.contains("now: 1 open, 0 half-open"));
        assert!(text.contains("hedges: 86 launched, 31 won"));
        assert!(text.contains("[balanced]"), "{text}");
    }

    #[test]
    fn shed_summary_renders_admission_accounting() {
        let stats = ShedStats {
            offered: 512,
            accepted: 480,
            queued: 20,
            shed: 12,
            queue_high_water: 6,
        };
        let text = shed_summary("pool admission", &stats);
        assert!(text.contains("512 offered, 480 accepted"));
        assert!(text.contains("20 queued (high water 6)"));
        assert!(text.contains("12 shed (2.3%)"));
        assert!(!text.contains("UNBALANCED"), "{text}");
        // A torn counter set is flagged, not hidden.
        let torn = ShedStats {
            offered: 10,
            accepted: 3,
            ..ShedStats::default()
        };
        assert!(shed_summary("x", &torn).contains("[UNBALANCED]"));
    }

    #[test]
    fn empty_campaign_has_zero_loss() {
        let row = CampaignHealth::from_fetch("empty", &FetchStats::default());
        assert_eq!(row.loss_rate(), 0.0);
    }

    #[test]
    fn pipeline_stats_render_stages_and_sink() {
        use minedig_primitives::pipeline::{PipelineStats, StageStats};
        let stats = PipelineStats {
            workers: 4,
            capacity: 64,
            batch: 16,
            items: 1_000,
            elapsed: Duration::from_millis(500),
            messages: 128,
            stages: vec![StageStats {
                stage: 0,
                workers: 4,
                items: 1_010,
                messages: 64,
                steals: 7,
                backpressure_waits: 2,
                busy: Duration::from_millis(900),
                first_input: Some(Duration::from_millis(1)),
                last_output: Some(Duration::from_millis(480)),
                per_worker: vec![253, 252, 253, 252],
            }],
            sink: StageStats {
                stage: 1,
                workers: 1,
                items: 1_000,
                messages: 64,
                steals: 0,
                backpressure_waits: 0,
                busy: Duration::from_millis(100),
                first_input: Some(Duration::from_millis(2)),
                last_output: Some(Duration::from_millis(490)),
                per_worker: vec![1_000],
            },
            feed_waits: 0,
        };
        let text = pipeline_stats("enumerate", &stats);
        assert!(text.contains("4 workers ×1 stage"));
        assert!(text.contains("overlapped"));
        assert!(text.contains("batch 16: 128 messages"));
        assert!(text.contains("stage 0: 1010 items"));
        assert!(text.contains("7 steals"));
        assert!(text.contains("sink:    1000 items"));
    }

    #[test]
    fn bar_chart_scales() {
        let series = vec![
            ("a".to_string(), 10.0),
            ("bb".to_string(), 5.0),
            ("ccc".to_string(), 0.0),
        ];
        let chart = bar_chart("demo", &series, 20);
        assert!(chart.contains(&"#".repeat(20)));
        assert!(chart.contains(&"#".repeat(10)));
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
