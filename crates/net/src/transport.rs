//! Transport abstraction: blocking, message-oriented, bidirectional.
//!
//! Protocol logic (pool, miner, short-link resolver) is written against
//! [`Transport`] so the same code runs over deterministic in-process
//! channels in tests and over real TCP sockets in the examples.

use crossbeam::channel::{
    bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};
use std::time::Duration;

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Peer is gone; no further messages will flow.
    Closed,
    /// `recv_timeout` elapsed without a message.
    Timeout,
    /// I/O failure (TCP path) with a description.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => f.write_str("transport closed"),
            TransportError::Timeout => f.write_str("transport receive timeout"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A blocking, message-oriented, bidirectional transport.
pub trait Transport: Send {
    /// Sends one message.
    fn send(&mut self, message: &[u8]) -> Result<(), TransportError>;
    /// Sends one message, waiting at most `timeout` for back-pressure
    /// to clear; a still-full channel yields [`TransportError::Timeout`]
    /// instead of wedging the sender forever.
    fn send_timeout(&mut self, message: &[u8], timeout: Duration) -> Result<(), TransportError>;
    /// Receives one message, blocking until available.
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;
    /// Receives one message, waiting at most `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError>;
}

/// Deadline applied by [`ChannelTransport`]'s plain `send` when the
/// bounded channel is full: one stalled consumer surfaces as a
/// [`TransportError::Timeout`] here rather than wedging the sender
/// indefinitely.
pub const DEFAULT_SEND_DEADLINE: Duration = Duration::from_secs(5);

/// In-process transport over a pair of crossbeam channels.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected pair of in-process transports.
///
/// The channels are bounded (1024 messages) so a runaway sender manifests
/// as back-pressure rather than unbounded memory use.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (a_tx, a_rx) = bounded(1024);
    let (b_tx, b_rx) = bounded(1024);
    (
        ChannelTransport { tx: a_tx, rx: b_rx },
        ChannelTransport { tx: b_tx, rx: a_rx },
    )
}

/// Bounds every blocking operation of an inner transport with a fixed
/// deadline: plain `send`/`recv` become `send_timeout`/`recv_timeout`
/// at the bound, and explicit timeouts are tightened to it.
///
/// This is what makes silently *dropped* requests survivable over a
/// real socket: after a request is lost in flight the peer never
/// replies, so a plain `recv()` would wedge the caller forever — under
/// a deadline it surfaces as [`TransportError::Timeout`], which retry
/// loops already classify as a broken attempt worth reconnecting.
pub struct DeadlineTransport<T: Transport> {
    inner: T,
    deadline: Duration,
}

impl<T: Transport> DeadlineTransport<T> {
    /// Wraps `inner`, bounding every operation by `deadline`.
    pub fn new(inner: T, deadline: Duration) -> DeadlineTransport<T> {
        DeadlineTransport { inner, deadline }
    }

    /// The configured bound.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for DeadlineTransport<T> {
    fn send(&mut self, message: &[u8]) -> Result<(), TransportError> {
        self.inner.send_timeout(message, self.deadline)
    }

    fn send_timeout(&mut self, message: &[u8], timeout: Duration) -> Result<(), TransportError> {
        self.inner.send_timeout(message, timeout.min(self.deadline))
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.inner.recv_timeout(self.deadline)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.inner.recv_timeout(timeout.min(self.deadline))
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, message: &[u8]) -> Result<(), TransportError> {
        self.send_timeout(message, DEFAULT_SEND_DEADLINE)
    }

    fn send_timeout(&mut self, message: &[u8], timeout: Duration) -> Result<(), TransportError> {
        // Fast path; wait out back-pressure only up to the deadline.
        match self.tx.try_send(message.to_vec()) {
            Ok(()) => Ok(()),
            Err(TrySendError::Disconnected(_)) => Err(TransportError::Closed),
            Err(TrySendError::Full(m)) => self.tx.send_timeout(m, timeout).map_err(|e| match e {
                SendTimeoutError::Timeout(_) => TransportError::Timeout,
                SendTimeoutError::Disconnected(_) => TransportError::Closed,
            }),
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Closed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn pair_exchanges_messages_both_ways() {
        let (mut a, mut b) = channel_pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn recv_timeout_expires() {
        let (mut a, _b) = channel_pair();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn dropped_peer_closes() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
        assert_eq!(a.recv(), Err(TransportError::Closed));
        let (mut c, d) = channel_pair();
        drop(d);
        assert_eq!(
            c.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn send_timeout_reports_timeout_on_stalled_consumer() {
        let (mut a, b) = channel_pair();
        // Fill the bounded channel without anyone draining it.
        for _ in 0..2048 {
            match a.send_timeout(b"spam", Duration::from_millis(1)) {
                Ok(()) => continue,
                Err(e) => {
                    assert_eq!(e, TransportError::Timeout);
                    drop(b);
                    return;
                }
            }
        }
        panic!("bounded channel never exerted back-pressure");
    }

    #[test]
    fn send_timeout_succeeds_once_consumer_drains() {
        let (mut a, mut b) = channel_pair();
        while a.send_timeout(b"x", Duration::from_millis(1)).is_ok() {}
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            b.recv().unwrap();
            b
        });
        a.send_timeout(b"y", Duration::from_secs(5)).unwrap();
        let _b = t.join().unwrap();
    }

    #[test]
    fn messages_preserve_order() {
        let (mut a, mut b) = channel_pair();
        for i in 0..100u32 {
            a.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(b.recv().unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn works_across_threads() {
        let (mut a, mut b) = channel_pair();
        let handle = thread::spawn(move || {
            let req = b.recv().unwrap();
            assert_eq!(req, b"job?");
            b.send(b"job!").unwrap();
        });
        a.send(b"job?").unwrap();
        assert_eq!(a.recv().unwrap(), b"job!");
        handle.join().unwrap();
    }

    #[test]
    fn deadline_bounds_a_silent_peer() {
        // The failure mode that excluded Drop faults from the TCP chaos
        // suite: a peer that never answers. Under a deadline the plain
        // recv reports Timeout instead of wedging.
        let (a, _b) = channel_pair();
        let mut a = DeadlineTransport::new(a, Duration::from_millis(10));
        assert_eq!(a.recv(), Err(TransportError::Timeout));
    }

    #[test]
    fn deadline_is_transparent_for_live_traffic() {
        let (a, mut b) = channel_pair();
        let mut a = DeadlineTransport::new(a, Duration::from_secs(1));
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn deadline_tightens_explicit_timeouts() {
        let (a, _b) = channel_pair();
        let mut a = DeadlineTransport::new(a, Duration::from_millis(5));
        let start = std::time::Instant::now();
        // The caller asks for 10s, the bound clamps it to 5ms.
        assert_eq!(
            a.recv_timeout(Duration::from_secs(10)),
            Err(TransportError::Timeout)
        );
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn queued_messages_survive_peer_drop() {
        // Messages already in flight should still be deliverable even if
        // the sender hung up afterwards (crossbeam semantics). recv drains
        // the buffered message, then reports Closed.
        let (mut a, mut b) = channel_pair();
        a.send(b"last words").unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap(), b"last words");
        assert_eq!(b.recv(), Err(TransportError::Closed));
    }
}
