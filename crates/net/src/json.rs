//! A minimal, total JSON implementation.
//!
//! Implemented in-repo (rather than adding `serde_json`) to keep the
//! workspace within its approved dependency set; see DESIGN.md. Numbers
//! preserve 64-bit integer precision — the short-link service configures
//! hash requirements up to 10^19 (Figure 4), which would be mangled by an
//! `f64`-only representation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON number, preserving integer precision where possible.
///
/// Equality is *numeric*: `F64(3.0)`, `U64(3)` and `I64(3)` compare equal,
/// so values round-trip through their textual encoding regardless of which
/// variant the parser picked.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Everything else.
    F64(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (U64(a), I64(b)) | (I64(b), U64(a)) => b >= 0 && a == b as u64,
            (U64(a), F64(b)) | (F64(b), U64(a)) => b >= 0.0 && b.fract() == 0.0 && a as f64 == b,
            (I64(a), F64(b)) | (F64(b), I64(a)) => b.fract() == 0.0 && a as f64 == b,
        }
    }
}

/// A JSON value.
///
/// ```
/// use minedig_net::Value;
///
/// let v = Value::parse(r#"{"type":"job","difficulty":16}"#).unwrap();
/// assert_eq!(v.get("type").unwrap().as_str(), Some("job"));
/// assert_eq!(v.get("difficulty").unwrap().as_u64(), Some(16));
/// assert_eq!(Value::parse(&v.encode()).unwrap(), v);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Number (see [`Number`]).
    Num(Number),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; key order is normalized (sorted) which keeps encodings
    /// deterministic across runs.
    Obj(BTreeMap<String, Value>),
}

/// JSON parse errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Convenience constructor for an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Unsigned integer value.
    pub fn u64(v: u64) -> Value {
        Value::Num(Number::U64(v))
    }

    /// Signed integer value.
    pub fn i64(v: i64) -> Value {
        if v >= 0 {
            Value::Num(Number::U64(v as u64))
        } else {
            Value::Num(Number::I64(v))
        }
    }

    /// Floating-point value.
    pub fn f64(v: f64) -> Value {
        Value::Num(Number::F64(v))
    }

    /// String value.
    pub fn str(v: &str) -> Value {
        Value::Str(v.to_string())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer (or an exact
    /// float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::U64(v)) => Some(*v),
            Value::Num(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            Value::Num(Number::F64(v)) if *v >= 0.0 && v.fract() == 0.0 && *v < 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::U64(v)) => Some(*v as f64),
            Value::Num(Number::I64(v)) => Some(*v as f64),
            Value::Num(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(Number::U64(v)) => {
                let _ = write!(out, "{v}");
            }
            Value::Num(Number::I64(v)) => {
                let _ = write!(out, "{v}");
            }
            Value::Num(Number::F64(v)) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; the whole input must be consumed (modulo
    /// trailing whitespace). Inputs larger than [`MAX_INPUT`] are
    /// rejected up front — a hostile peer cannot make the parser
    /// allocate proportionally to an unbounded document.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let bytes = input.as_bytes();
        if bytes.len() > MAX_INPUT {
            return Err(ParseError {
                offset: MAX_INPUT,
                message: "input exceeds size cap",
            });
        }
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

/// Hard ceiling on the size of a parseable document (1 MiB).
///
/// The protocol's largest legitimate messages are block templates a few
/// kilobytes long; anything near this cap is hostile or corrupt, and
/// rejecting it before the first byte is examined keeps peak memory
/// bounded by what the transport already buffered.
pub const MAX_INPUT: usize = 1 << 20;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':', "expected ':'")?;
                    let value = self.parse_value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(map));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, word: &'static str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let low = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(c).ok_or(self.err("invalid codepoint"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&code) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(code).ok_or(self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Num(Number::I64(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U64(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Num(Number::F64(v))),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::u64(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Num(Number::I64(-7)));
        assert_eq!(Value::parse("1.5").unwrap(), Value::f64(1.5));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn preserves_u64_precision() {
        // 10^19: the Fig-4 hash-count tail. f64 would round this.
        let v = Value::parse("10000000000000000019").unwrap();
        assert_eq!(v.as_u64(), Some(10_000_000_000_000_000_019));
        assert_eq!(v.encode(), "10000000000000000019");
    }

    #[test]
    fn parses_nested_structure() {
        let v = Value::parse(r#"{"type":"job","blob":"abc","target":255,"ids":[1,2,3]}"#).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("job"));
        assert_eq!(v.get("target").unwrap().as_u64(), Some(255));
        assert_eq!(v.get("ids").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let v = Value::Str(s.to_string());
        let parsed = Value::parse(&v.encode()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Value::parse(r#""é€""#).unwrap().as_str(), Some("é€"));
        // Surrogate pair: U+1F600.
        assert_eq!(Value::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_lone_surrogates() {
        assert!(Value::parse(r#""\ud83d""#).is_err());
        assert!(Value::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "01a",
            "\"unterminated",
            "{\"a\" 1}",
            "[1 2]",
            "nul",
            "--1",
            "-",
            "{\"a\":1} extra",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerance() {
        let v = Value::parse(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn size_cap_rejects_oversized_input_exactly_at_the_boundary() {
        // A document of exactly MAX_INPUT bytes parses; one byte more
        // is refused before any value is examined.
        let at_cap = format!("{}1", " ".repeat(MAX_INPUT - 1));
        assert_eq!(at_cap.len(), MAX_INPUT);
        assert_eq!(Value::parse(&at_cap).unwrap(), Value::u64(1));

        let over_cap = format!("{}1", " ".repeat(MAX_INPUT));
        let err = Value::parse(&over_cap).unwrap_err();
        assert_eq!(err.message, "input exceeds size cap");
        assert_eq!(err.offset, MAX_INPUT);
        assert!(err.to_string().contains("exceeds size cap"));
    }

    #[test]
    fn depth_limit_guards_stack() {
        let mut deep = String::new();
        for _ in 0..1000 {
            deep.push('[');
        }
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn object_helper_and_get() {
        let v = Value::object(vec![("x", Value::u64(1)), ("y", Value::str("z"))]);
        assert_eq!(v.get("x").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::u64(5).get("x"), None);
    }

    #[test]
    fn number_accessor_edge_cases() {
        assert_eq!(Value::f64(3.0).as_u64(), Some(3));
        assert_eq!(Value::f64(3.5).as_u64(), None);
        assert_eq!(Value::i64(-1).as_u64(), None);
        assert_eq!(Value::i64(-1).as_f64(), Some(-1.0));
        assert_eq!(Value::str("1").as_u64(), None);
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Value::f64(f64::NAN).encode(), "null");
        assert_eq!(Value::f64(f64::INFINITY).encode(), "null");
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<u64>().prop_map(Value::u64),
            any::<i64>().prop_map(Value::i64),
            // Restrict to floats that roundtrip through decimal text.
            (-1_000_000i32..1_000_000).prop_map(|v| Value::f64(v as f64 / 64.0)),
            "[a-zA-Z0-9 \\\\\"\n\t\u{e9}]{0,20}".prop_map(Value::Str),
        ];
        leaf.prop_recursive(4, 64, 8, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Arr),
                prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Value::Obj),
            ]
        })
    }

    proptest! {
        #[test]
        fn encode_parse_roundtrip(v in arb_value()) {
            let encoded = v.encode();
            let parsed = Value::parse(&encoded).unwrap();
            prop_assert_eq!(parsed, v);
        }

        #[test]
        fn parser_never_panics(s in "\\PC{0,64}") {
            let _ = Value::parse(&s);
        }

        #[test]
        fn size_cap_boundary_is_exact(pad in 0usize..4, under in any::<bool>()) {
            // Whitespace-padded documents straddling the cap: accepted
            // iff the total byte length fits, independent of content.
            let len = if under { MAX_INPUT - pad } else { MAX_INPUT + 1 + pad };
            let doc = format!("{}1", " ".repeat(len - 1));
            prop_assert_eq!(doc.len(), len);
            let result = Value::parse(&doc);
            if under {
                prop_assert_eq!(result.unwrap(), Value::u64(1));
            } else {
                prop_assert_eq!(result.unwrap_err().message, "input exceeds size cap");
            }
        }
    }
}
