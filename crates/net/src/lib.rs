#![warn(missing_docs)]
//! Networking substrate: message framing, a WebSocket-style frame codec, a
//! minimal JSON implementation, and transports.
//!
//! The systems the paper measures talk JSON over WebSockets: the Coinhive
//! miner authenticates with a user token and receives PoW jobs, and the
//! paper's observer connects to all 32 pool endpoints requesting jobs every
//! 500 ms (§4.2). This crate provides those mechanics:
//!
//! * [`json`] — a small, total JSON encoder/decoder (implemented in-repo to
//!   keep the workspace within its approved dependency set),
//! * [`wsframe`] — RFC 6455-style frame encoding/decoding (FIN/opcode,
//!   client masking, 7/16/64-bit lengths) used on the TCP path,
//! * [`frame`] — a simple length-prefixed codec for tests and fuzzing,
//! * [`fault`] — a fault-injecting [`transport::Transport`] decorator
//!   driven by a seeded, reproducible fault schedule (chaos testing),
//! * [`aio`] — readiness adapters that let any [`transport::Transport`]
//!   (including the faulty decorator) park on the cooperative async
//!   executor instead of blocking a thread per connection,
//! * [`transport`] — the blocking [`transport::Transport`] trait with an
//!   in-process crossbeam channel implementation (deterministic tests),
//! * [`tcp`] — real `std::net` sockets: a thread-per-connection server and
//!   a client transport speaking [`wsframe`] over TCP. Per the project's
//!   networking guides, the workload (few dozen connections, CPU-bound
//!   payloads) is served best by plain threads rather than an async
//!   runtime.

pub mod aio;
pub mod fault;
pub mod frame;
pub mod json;
pub mod tcp;
pub mod transport;
pub mod wsframe;

pub use aio::{recv_ready, MultiParkRegistrar, MultiParkWait, RecvReady};
pub use fault::{FaultStats, FaultyTransport};
pub use json::Value;
pub use transport::{channel_pair, ChannelTransport, DeadlineTransport, Transport, TransportError};
