//! TCP transport and a thread-per-connection server.
//!
//! Real sockets for the examples and end-to-end tests: frames are RFC
//! 6455-style WebSocket frames ([`crate::wsframe`]) carried over
//! `std::net::TcpStream`. Client→server frames are masked per the RFC;
//! server→client frames are not.
//!
//! The server follows the "simple and robust" idiom from the project's
//! networking guides: one OS thread per connection (connection counts in
//! this workload are tiny — the paper's observer opens 32), a shared
//! shutdown flag, and explicit timeouts everywhere.
//!
//! ## Zero-timeout polls and the mode cache
//!
//! `recv_timeout(Duration::ZERO)` / `send_timeout(Duration::ZERO)` are
//! the cooperative executor's readiness probes (`crate::aio`), so they
//! must mean "try once, never block" — but std rejects
//! `set_read_timeout(Some(Duration::ZERO))` with `InvalidInput`. Zero
//! timeouts therefore run the socket in nonblocking mode and translate
//! `WouldBlock` to [`TransportError::Timeout`]. The kernel-visible mode
//! (O_NONBLOCK, SO_RCVTIMEO/SO_SNDTIMEO) is cached in [`SockMode`] so a
//! poll loop issuing thousands of zero-timeout receives pays the
//! `setsockopt` once, not per call; blocking operations restore their
//! mode lazily through the same cache. The cache is shared with
//! [`TcpParker`]s cloned off the transport, because a dup'd fd shares
//! those flags with the original socket.
//!
//! ## Partial writes
//!
//! A send that times out mid-frame must not corrupt framing: the encoded
//! frame is queued in a pending-output buffer and the unwritten tail is
//! resumed by the next send (of any kind) before new bytes are written.
//! From the peer's perspective every accepted frame arrives exactly once
//! and intact; from the caller's, a `Timeout` from `send_timeout` means
//! "queued but not yet fully on the wire", and it drains as soon as a
//! later send (or reconnect teardown) runs.

use crate::transport::{Transport, TransportError};
use crate::wsframe::{decode_ws, encode_ws, Opcode, WsFrame};
use bytes::BytesMut;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Sentinel for "no timeout set" in the microsecond caches.
const TIMEOUT_UNSET: u64 = u64::MAX;

fn timeout_us(t: Option<Duration>) -> u64 {
    match t {
        None => TIMEOUT_UNSET,
        Some(d) => (d.as_micros().min(TIMEOUT_UNSET as u128 - 1)) as u64,
    }
}

/// Cached kernel-visible socket mode. O_NONBLOCK and the SO_*TIMEO
/// options live on the socket, not the fd, so a [`TcpParker`] cloned
/// from a transport shares this cache with it — whichever side changes
/// the mode records it here, and the other side trusts the cache instead
/// of re-issuing the syscall.
struct SockMode {
    nonblocking: AtomicBool,
    read_timeout_us: AtomicU64,
    write_timeout_us: AtomicU64,
}

impl SockMode {
    fn new() -> SockMode {
        SockMode {
            nonblocking: AtomicBool::new(false),
            read_timeout_us: AtomicU64::new(TIMEOUT_UNSET),
            write_timeout_us: AtomicU64::new(TIMEOUT_UNSET),
        }
    }
}

/// Pending output: encoded frame bytes not yet accepted by the kernel.
/// Consumed from the front via an offset so resuming a half-written
/// 32 MiB frame does not memmove the tail on every write.
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    head: usize,
}

impl OutBuf {
    fn is_empty(&self) -> bool {
        self.head >= self.buf.len()
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.head.min(self.buf.len())..]
    }

    fn consume(&mut self, n: usize) {
        self.head += n;
        if self.head >= self.buf.len() {
            self.buf.clear();
            self.head = 0;
        }
    }
}

/// A [`Transport`] over a TCP stream speaking WebSocket-style frames.
pub struct TcpTransport {
    stream: TcpStream,
    inbuf: BytesMut,
    outbuf: OutBuf,
    /// Clients mask their frames; servers do not.
    is_client: bool,
    mask_counter: u64,
    mode: Arc<SockMode>,
}

impl TcpTransport {
    /// Wraps an accepted (server-side) stream.
    pub fn server_side(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            inbuf: BytesMut::with_capacity(8 * 1024),
            outbuf: OutBuf::default(),
            is_client: false,
            mask_counter: 0,
            mode: Arc::new(SockMode::new()),
        })
    }

    /// Connects to `addr` as a client.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            inbuf: BytesMut::with_capacity(8 * 1024),
            outbuf: OutBuf::default(),
            is_client: true,
            mask_counter: 0x9e3779b97f4a7c15,
            mode: Arc::new(SockMode::new()),
        })
    }

    /// A [`TcpParker`] sharing this transport's socket: the executor's
    /// idle sweep can block on it until the socket turns readable,
    /// instead of spinning on zero-timeout polls.
    pub fn parker(&self) -> std::io::Result<TcpParker> {
        Ok(TcpParker {
            stream: self.stream.try_clone()?,
            mode: self.mode.clone(),
        })
    }

    fn next_mask(&mut self) -> [u8; 4] {
        // Masking exists to defeat proxy cache poisoning, not for secrecy;
        // a counter-derived key is within spec requirements for our use.
        self.mask_counter = self
            .mask_counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        ((self.mask_counter >> 32) as u32).to_be_bytes()
    }

    fn ensure_nonblocking(&mut self) -> Result<(), TransportError> {
        if !self.mode.nonblocking.load(Ordering::Relaxed) {
            self.stream
                .set_nonblocking(true)
                .map_err(|e| TransportError::Io(e.to_string()))?;
            self.mode.nonblocking.store(true, Ordering::Relaxed);
        }
        Ok(())
    }

    fn ensure_blocking(&mut self) -> Result<(), TransportError> {
        if self.mode.nonblocking.load(Ordering::Relaxed) {
            self.stream
                .set_nonblocking(false)
                .map_err(|e| TransportError::Io(e.to_string()))?;
            self.mode.nonblocking.store(false, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Applies `timeout` as the socket read timeout, skipping the
    /// syscall when the cached value already matches. `timeout` must not
    /// be `Some(Duration::ZERO)` (std rejects it) — zero-timeout receives
    /// take the nonblocking path instead.
    fn ensure_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        let us = timeout_us(timeout);
        if self.mode.read_timeout_us.load(Ordering::Relaxed) != us {
            self.stream
                .set_read_timeout(timeout)
                .map_err(|e| TransportError::Io(e.to_string()))?;
            self.mode.read_timeout_us.store(us, Ordering::Relaxed);
        }
        Ok(())
    }

    fn ensure_write_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        let us = timeout_us(timeout);
        if self.mode.write_timeout_us.load(Ordering::Relaxed) != us {
            self.stream
                .set_write_timeout(timeout)
                .map_err(|e| TransportError::Io(e.to_string()))?;
            self.mode.write_timeout_us.store(us, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Puts the socket in the right mode for a receive with `timeout`:
    /// `Some(ZERO)` → nonblocking probe, anything else → blocking with
    /// the (cached) read timeout.
    fn enter_read_mode(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        match timeout {
            Some(t) if t.is_zero() => self.ensure_nonblocking(),
            other => {
                self.ensure_blocking()?;
                self.ensure_read_timeout(other)
            }
        }
    }

    fn read_frame(&mut self, timeout: Option<Duration>) -> Result<WsFrame, TransportError> {
        self.enter_read_mode(timeout)?;
        let mut chunk = [0u8; 4096];
        loop {
            match decode_ws(&mut self.inbuf) {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(TransportError::Timeout)
                }
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    return Err(TransportError::Closed)
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }

    fn recv_data(&mut self, timeout: Option<Duration>) -> Result<Vec<u8>, TransportError> {
        loop {
            let frame = self.read_frame(timeout)?;
            match frame.opcode {
                Opcode::Text | Opcode::Binary => return Ok(frame.payload),
                Opcode::Ping => {
                    // Answer pings transparently through the pending
                    // buffer: if the socket cannot take the pong right
                    // now it rides out with the next send.
                    self.queue_frame(Opcode::Pong, &frame.payload);
                    self.flush_pending()?;
                }
                Opcode::Pong => {}
                Opcode::Close => return Err(TransportError::Closed),
            }
        }
    }

    /// Encodes `payload` as a frame at the tail of the pending buffer.
    fn queue_frame(&mut self, opcode: Opcode, payload: &[u8]) {
        let mask = if self.is_client {
            Some(self.next_mask())
        } else {
            None
        };
        let mut encoded = BytesMut::new();
        encode_ws(&mut encoded, opcode, payload, mask);
        self.outbuf.buf.extend_from_slice(&encoded);
    }

    /// Writes as much pending output as the socket will take right now.
    /// Returns `Ok(true)` when fully drained; `Ok(false)` means the
    /// socket stopped accepting bytes (timeout/would-block) and the
    /// unwritten tail stays queued for the next send.
    fn flush_pending(&mut self) -> Result<bool, TransportError> {
        while !self.outbuf.is_empty() {
            match self.stream.write(self.outbuf.pending()) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => self.outbuf.consume(n),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(false)
                }
                Err(e)
                    if e.kind() == ErrorKind::BrokenPipe
                        || e.kind() == ErrorKind::ConnectionReset =>
                {
                    return Err(TransportError::Closed)
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
        Ok(true)
    }

    fn send_with_mode(
        &mut self,
        message: &[u8],
        timeout: Option<Duration>,
    ) -> Result<(), TransportError> {
        match timeout {
            Some(t) if t.is_zero() => self.ensure_nonblocking()?,
            other => {
                self.ensure_blocking()?;
                self.ensure_write_timeout(other)?;
            }
        }
        self.queue_frame(Opcode::Text, message);
        if self.flush_pending()? {
            Ok(())
        } else {
            Err(TransportError::Timeout)
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, message: &[u8]) -> Result<(), TransportError> {
        self.send_with_mode(message, None)
    }

    fn send_timeout(&mut self, message: &[u8], timeout: Duration) -> Result<(), TransportError> {
        self.send_with_mode(message, Some(timeout))
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.recv_data(None)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.recv_data(Some(timeout))
    }
}

/// Blocks a thread until a [`TcpTransport`]'s socket turns readable —
/// the executor's [`IdleWait`](minedig_primitives::aexec::IdleWait)
/// strategy for real sockets parks here between idle sweeps instead of
/// spinning on zero-timeout polls.
///
/// The parker holds a dup of the transport's fd, so its blocking `peek`
/// shares O_NONBLOCK/SO_RCVTIMEO with the transport; both sides go
/// through the shared [`SockMode`] cache, and the transport restores its
/// own mode (one cached syscall) on its next operation. Safe on the
/// single-threaded executor because the parker only runs while no task
/// is mid-operation.
pub struct TcpParker {
    stream: TcpStream,
    mode: Arc<SockMode>,
}

impl TcpParker {
    /// Waits up to `max` for readable bytes without consuming them.
    /// Returns whether the socket looks ready (errors report ready, so
    /// the owning transport surfaces them on its next receive).
    pub fn wait(&self, max: Duration) -> bool {
        let max = if max.is_zero() {
            Duration::from_millis(1)
        } else {
            max
        };
        if self.mode.nonblocking.load(Ordering::Relaxed) {
            if self.stream.set_nonblocking(false).is_err() {
                return true;
            }
            self.mode.nonblocking.store(false, Ordering::Relaxed);
        }
        let us = timeout_us(Some(max));
        if self.mode.read_timeout_us.load(Ordering::Relaxed) != us {
            if self.stream.set_read_timeout(Some(max)).is_err() {
                return true;
            }
            self.mode.read_timeout_us.store(us, Ordering::Relaxed);
        }
        let mut byte = [0u8; 1];
        match self.stream.peek(&mut byte) {
            Ok(_) => true,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => false,
            Err(_) => true,
        }
    }
}

/// A running TCP server. Dropping it (or calling [`TcpServer::shutdown`])
/// stops the accept loop and waits for it to exit; connection handler
/// threads exit when their peers disconnect.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
}

impl TcpServer {
    /// Binds to `127.0.0.1:0` (or a given address) and serves each
    /// connection with `handler` on its own thread.
    pub fn spawn<F>(bind: &str, handler: F) -> std::io::Result<TcpServer>
    where
        F: Fn(TcpTransport) + Send + Sync + 'static,
    {
        TcpServer::spawn_with_limit(bind, None, handler)
    }

    /// [`TcpServer::spawn`] with connection-level admission control:
    /// when `max_connections` handler threads are already live, a new
    /// connection is hung up on immediately (its peer sees `Closed`)
    /// and counted in [`TcpServer::connections_shed`] instead of getting
    /// a thread. `None` keeps the historical unbounded behaviour.
    pub fn spawn_with_limit<F>(
        bind: &str,
        max_connections: Option<u64>,
        handler: F,
    ) -> std::io::Result<TcpServer>
    where
        F: Fn(TcpTransport) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicU64::new(0));
        let handler = Arc::new(handler);
        let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let stop2 = stop.clone();
        let conns2 = connections.clone();
        let shed2 = shed.clone();
        let handles2 = handles.clone();
        let accept_thread = std::thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if let Some(cap) = max_connections {
                                if active.load(Ordering::Acquire) >= cap {
                                    // Dropping the stream sends FIN/RST;
                                    // the peer's next operation reports
                                    // Closed, which clients already treat
                                    // as a reconnectable condition.
                                    shed2.fetch_add(1, Ordering::Relaxed);
                                    drop(stream);
                                    continue;
                                }
                            }
                            stream.set_nonblocking(false).ok();
                            conns2.fetch_add(1, Ordering::Relaxed);
                            active.fetch_add(1, Ordering::AcqRel);
                            let handler = handler.clone();
                            let active2 = active.clone();
                            let h = std::thread::Builder::new()
                                .name("tcp-conn".into())
                                .spawn(move || {
                                    if let Ok(t) = TcpTransport::server_side(stream) {
                                        handler(t);
                                    }
                                    active2.fetch_sub(1, Ordering::AcqRel);
                                })
                                .expect("spawn connection thread");
                            handles2.lock().push(h);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;

        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            connections,
            shed,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections hung up on by the admission cap.
    pub fn connections_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Stops accepting new connections.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An echo server used by several tests.
    fn echo_server() -> TcpServer {
        TcpServer::spawn("127.0.0.1:0", |mut t| {
            while let Ok(msg) = t.recv() {
                if t.send(&msg).is_err() {
                    break;
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn echo_roundtrip() {
        let server = echo_server();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        client.send(b"{\"hello\":1}").unwrap();
        assert_eq!(client.recv().unwrap(), b"{\"hello\":1}");
    }

    #[test]
    fn multiple_clients_in_parallel() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i: u32| {
                std::thread::spawn(move || {
                    let mut c = TcpTransport::connect(addr).unwrap();
                    for round in 0..10u32 {
                        let msg = format!("client {i} round {round}");
                        c.send(msg.as_bytes()).unwrap();
                        assert_eq!(c.recv().unwrap(), msg.as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.connections_accepted(), 8);
    }

    #[test]
    fn recv_timeout_fires() {
        let server = echo_server();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_millis(30)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn zero_timeout_recv_is_a_nonblocking_probe() {
        // Regression: `set_read_timeout(Some(ZERO))` is InvalidInput in
        // std, so this used to surface `Io`, breaking the async adapter.
        let server = echo_server();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        for _ in 0..100 {
            assert_eq!(
                client.recv_timeout(Duration::ZERO),
                Err(TransportError::Timeout),
                "an idle socket must report Timeout, never Io"
            );
        }
        // The probe must not poison later blocking operations.
        client.send(b"after-probe").unwrap();
        assert_eq!(client.recv().unwrap(), b"after-probe");
        // And once a message is in flight, the probe eventually sees it.
        client.send(b"again").unwrap();
        let mut got = None;
        for _ in 0..1_000 {
            match client.recv_timeout(Duration::ZERO) {
                Ok(msg) => {
                    got = Some(msg);
                    break;
                }
                Err(TransportError::Timeout) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert_eq!(got.as_deref(), Some(&b"again"[..]));
    }

    #[test]
    fn zero_timeout_send_never_reports_io() {
        // The peer never reads, so the kernel buffers fill up and the
        // nonblocking send path must surface Timeout (not Io, and not a
        // hang). The frame tail stays queued — dropping the transport
        // discards it, like a reconnect would.
        let server = TcpServer::spawn("127.0.0.1:0", |_t| {
            std::thread::sleep(Duration::from_millis(500));
        })
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let chunk = vec![0x5au8; 1 << 20];
        let mut saw_timeout = false;
        for _ in 0..64 {
            match client.send_timeout(&chunk, Duration::ZERO) {
                Ok(()) => {}
                Err(TransportError::Timeout) => {
                    saw_timeout = true;
                    break;
                }
                Err(e) => panic!("zero-timeout send must not fail with {e:?}"),
            }
        }
        assert!(saw_timeout, "64 MiB must exceed the socket buffers");
    }

    #[test]
    fn timed_out_send_resumes_without_corrupting_frames() {
        // A huge frame times out half-written; the next (blocking) send
        // must first finish the old frame so the peer sees both intact.
        let gate = Arc::new(AtomicBool::new(false));
        let gate2 = gate.clone();
        let server = TcpServer::spawn("127.0.0.1:0", move |mut t| {
            while !gate2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
            }
            while let Ok(msg) = t.recv() {
                let reply = msg.len().to_string();
                if t.send(reply.as_bytes()).is_err() {
                    break;
                }
            }
        })
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        // 12 MiB: under the 16 MiB frame sanity cap, far over the
        // kernel socket buffers while the peer stalls.
        let big: Vec<u8> = (0..12 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(
            client.send_timeout(&big, Duration::from_millis(50)),
            Err(TransportError::Timeout),
            "the frame cannot fit the kernel buffers while the peer stalls"
        );
        gate.store(true, Ordering::Relaxed);
        // This blocking send drains the stale tail first, then its own
        // frame — framing survives the earlier partial write.
        client.send(b"tiny").unwrap();
        assert_eq!(client.recv().unwrap(), big.len().to_string().as_bytes());
        assert_eq!(client.recv().unwrap(), b"4");
    }

    #[test]
    fn parker_waits_for_readability_without_consuming() {
        let server = echo_server();
        let addr = server.addr();
        let mut client = TcpTransport::connect(addr).unwrap();
        let parker = client.parker().unwrap();
        // Nothing in flight: the wait times out.
        assert!(!parker.wait(Duration::from_millis(20)));
        client.send(b"wake").unwrap();
        // The echo arrives within the wait budget…
        let mut ready = false;
        for _ in 0..100 {
            if parker.wait(Duration::from_millis(10)) {
                ready = true;
                break;
            }
        }
        assert!(ready, "echo reply must make the socket readable");
        // …and was not consumed by the peek.
        assert_eq!(client.recv().unwrap(), b"wake");
    }

    #[test]
    fn connection_cap_sheds_and_recovers() {
        // Handlers park until released so the first connection pins the
        // single slot; the second must be shed, and once the slot frees
        // up a third connection is served normally.
        let release = Arc::new(AtomicBool::new(false));
        let r2 = release.clone();
        let server = TcpServer::spawn_with_limit("127.0.0.1:0", Some(1), move |mut t| {
            while !r2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(2));
            }
            while let Ok(msg) = t.recv() {
                if t.send(&msg).is_err() {
                    break;
                }
            }
        })
        .unwrap();
        let mut first = TcpTransport::connect(server.addr()).unwrap();
        // Wait for the accept loop to register the first connection.
        for _ in 0..500 {
            if server.connections_accepted() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.connections_accepted(), 1);

        let mut second = TcpTransport::connect(server.addr()).unwrap();
        let shed_seen = (0..500).any(|_| {
            std::thread::sleep(Duration::from_millis(2));
            server.connections_shed() == 1
        });
        assert!(shed_seen, "over-cap connection must be counted as shed");
        // The shed peer observes a hangup, not silence.
        let _ = second.send(b"hello?");
        assert!(matches!(
            second.recv_timeout(Duration::from_millis(500)),
            Err(TransportError::Closed) | Err(TransportError::Timeout)
        ));
        drop(second);

        release.store(true, Ordering::Relaxed);
        first.send(b"still here").unwrap();
        assert_eq!(first.recv().unwrap(), b"still here");
        drop(first);
        // The slot drains; a fresh connection is admitted again.
        let admitted = (0..500).any(|_| {
            std::thread::sleep(Duration::from_millis(2));
            let mut third = match TcpTransport::connect(server.addr()) {
                Ok(t) => t,
                Err(_) => return false,
            };
            third.send(b"third").ok();
            third.recv_timeout(Duration::from_millis(200)) == Ok(b"third".to_vec())
        });
        assert!(admitted, "capacity must recover after the first peer left");
    }

    #[test]
    fn server_disconnect_is_closed() {
        let server = TcpServer::spawn("127.0.0.1:0", |mut t| {
            let _ = t.recv(); // read one message then hang up
        })
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        client.send(b"bye").unwrap();
        assert_eq!(client.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn large_message_crosses_intact() {
        let server = echo_server();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let big: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        client.send(&big).unwrap();
        assert_eq!(client.recv().unwrap(), big);
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        // A fresh connection may connect into the dead listener's backlog,
        // but communication must fail.
        if let Ok(mut c) = TcpTransport::connect(addr) {
            let _ = c.send(b"x");
            assert!(c.recv_timeout(Duration::from_millis(50)).is_err());
        }
    }
}
