//! TCP transport and a thread-per-connection server.
//!
//! Real sockets for the examples and end-to-end tests: frames are RFC
//! 6455-style WebSocket frames ([`crate::wsframe`]) carried over
//! `std::net::TcpStream`. Client→server frames are masked per the RFC;
//! server→client frames are not.
//!
//! The server follows the "simple and robust" idiom from the project's
//! networking guides: one OS thread per connection (connection counts in
//! this workload are tiny — the paper's observer opens 32), a shared
//! shutdown flag, and explicit timeouts everywhere.

use crate::transport::{Transport, TransportError};
use crate::wsframe::{decode_ws, encode_ws, Opcode, WsFrame};
use bytes::BytesMut;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A [`Transport`] over a TCP stream speaking WebSocket-style frames.
pub struct TcpTransport {
    stream: TcpStream,
    inbuf: BytesMut,
    /// Clients mask their frames; servers do not.
    is_client: bool,
    mask_counter: u64,
}

impl TcpTransport {
    /// Wraps an accepted (server-side) stream.
    pub fn server_side(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            inbuf: BytesMut::with_capacity(8 * 1024),
            is_client: false,
            mask_counter: 0,
        })
    }

    /// Connects to `addr` as a client.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            inbuf: BytesMut::with_capacity(8 * 1024),
            is_client: true,
            mask_counter: 0x9e3779b97f4a7c15,
        })
    }

    fn next_mask(&mut self) -> [u8; 4] {
        // Masking exists to defeat proxy cache poisoning, not for secrecy;
        // a counter-derived key is within spec requirements for our use.
        self.mask_counter = self
            .mask_counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        ((self.mask_counter >> 32) as u32).to_be_bytes()
    }

    fn read_frame(&mut self, timeout: Option<Duration>) -> Result<WsFrame, TransportError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let mut chunk = [0u8; 4096];
        loop {
            match decode_ws(&mut self.inbuf) {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(TransportError::Timeout)
                }
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    return Err(TransportError::Closed)
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }

    fn recv_data(&mut self, timeout: Option<Duration>) -> Result<Vec<u8>, TransportError> {
        loop {
            let frame = self.read_frame(timeout)?;
            match frame.opcode {
                Opcode::Text | Opcode::Binary => return Ok(frame.payload),
                Opcode::Ping => {
                    // Answer pings transparently.
                    let mask = if self.is_client {
                        Some(self.next_mask())
                    } else {
                        None
                    };
                    let mut out = BytesMut::new();
                    encode_ws(&mut out, Opcode::Pong, &frame.payload, mask);
                    self.stream
                        .write_all(&out)
                        .map_err(|e| TransportError::Io(e.to_string()))?;
                }
                Opcode::Pong => {}
                Opcode::Close => return Err(TransportError::Closed),
            }
        }
    }
}

impl TcpTransport {
    fn write_text_frame(&mut self, message: &[u8]) -> Result<(), TransportError> {
        let mask = if self.is_client {
            Some(self.next_mask())
        } else {
            None
        };
        let mut out = BytesMut::new();
        encode_ws(&mut out, Opcode::Text, message, mask);
        self.stream.write_all(&out).map_err(|e| match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset => TransportError::Closed,
            ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout,
            _ => TransportError::Io(e.to_string()),
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, message: &[u8]) -> Result<(), TransportError> {
        self.write_text_frame(message)
    }

    fn send_timeout(&mut self, message: &[u8], timeout: Duration) -> Result<(), TransportError> {
        // Map the deadline onto the socket's write timeout for this one
        // send, then restore unbounded writes.
        self.stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let result = self.write_text_frame(message);
        let _ = self.stream.set_write_timeout(None);
        result
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.recv_data(None)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.recv_data(Some(timeout))
    }
}

/// A running TCP server. Dropping it (or calling [`TcpServer::shutdown`])
/// stops the accept loop and waits for it to exit; connection handler
/// threads exit when their peers disconnect.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
}

impl TcpServer {
    /// Binds to `127.0.0.1:0` (or a given address) and serves each
    /// connection with `handler` on its own thread.
    pub fn spawn<F>(bind: &str, handler: F) -> std::io::Result<TcpServer>
    where
        F: Fn(TcpTransport) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let handler = Arc::new(handler);
        let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let stop2 = stop.clone();
        let conns2 = connections.clone();
        let handles2 = handles.clone();
        let accept_thread = std::thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).ok();
                            conns2.fetch_add(1, Ordering::Relaxed);
                            let handler = handler.clone();
                            let h = std::thread::Builder::new()
                                .name("tcp-conn".into())
                                .spawn(move || {
                                    if let Ok(t) = TcpTransport::server_side(stream) {
                                        handler(t);
                                    }
                                })
                                .expect("spawn connection thread");
                            handles2.lock().push(h);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;

        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Stops accepting new connections.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An echo server used by several tests.
    fn echo_server() -> TcpServer {
        TcpServer::spawn("127.0.0.1:0", |mut t| {
            while let Ok(msg) = t.recv() {
                if t.send(&msg).is_err() {
                    break;
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn echo_roundtrip() {
        let server = echo_server();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        client.send(b"{\"hello\":1}").unwrap();
        assert_eq!(client.recv().unwrap(), b"{\"hello\":1}");
    }

    #[test]
    fn multiple_clients_in_parallel() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i: u32| {
                std::thread::spawn(move || {
                    let mut c = TcpTransport::connect(addr).unwrap();
                    for round in 0..10u32 {
                        let msg = format!("client {i} round {round}");
                        c.send(msg.as_bytes()).unwrap();
                        assert_eq!(c.recv().unwrap(), msg.as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.connections_accepted(), 8);
    }

    #[test]
    fn recv_timeout_fires() {
        let server = echo_server();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_millis(30)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn server_disconnect_is_closed() {
        let server = TcpServer::spawn("127.0.0.1:0", |mut t| {
            let _ = t.recv(); // read one message then hang up
        })
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        client.send(b"bye").unwrap();
        assert_eq!(client.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn large_message_crosses_intact() {
        let server = echo_server();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let big: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        client.send(&big).unwrap();
        assert_eq!(client.recv().unwrap(), big);
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        // A fresh connection may connect into the dead listener's backlog,
        // but communication must fail.
        if let Ok(mut c) = TcpTransport::connect(addr) {
            let _ = c.send(b"x");
            assert!(c.recv_timeout(Duration::from_millis(50)).is_err());
        }
    }
}
