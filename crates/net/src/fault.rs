//! Fault-injecting transport wrapper for chaos testing.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and injects message
//! drops, delivery delays, disconnects, garbled payloads, and stalls on
//! the reproducible schedule of a seeded
//! [`FaultPlan`](minedig_primitives::fault::FaultPlan). Operations are
//! keyed `"{label}.send.{n}"` / `"{label}.recv.{n}"` by sequence
//! number, so two transports with the same plan and label experience
//! byte-identical fault schedules — the property the unit tests pin
//! down and the chaos suites build on.

use crate::transport::{Transport, TransportError};
use minedig_primitives::fault::{Fault, FaultPlan};
use minedig_primitives::rng::DetRng;
use std::time::Duration;

/// Per-kind counters of the faults a [`FaultyTransport`] injected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently lost (send) or discarded in flight (recv).
    pub drops: u64,
    /// Messages delivered late.
    pub delays: u64,
    /// Total injected latency in milliseconds.
    pub delayed_ms: u64,
    /// Connection teardowns injected.
    pub disconnects: u64,
    /// Payloads delivered corrupted.
    pub garbles: u64,
    /// Operations that hung until the caller's timeout.
    pub stalls: u64,
    /// Times the caller re-established the connection.
    pub reconnects: u64,
}

impl FaultStats {
    /// Total faults injected (reconnects are recoveries, not faults).
    pub fn injected(&self) -> u64 {
        self.drops + self.delays + self.disconnects + self.garbles + self.stalls
    }
}

/// A [`Transport`] decorator that injects deterministic faults.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    label: String,
    send_seq: u64,
    recv_seq: u64,
    disconnected: bool,
    stats: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given plan. `label` namespaces this
    /// transport's operations within the plan (e.g. the endpoint id).
    pub fn new(inner: T, plan: FaultPlan, label: &str) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            plan,
            label: label.to_string(),
            send_seq: 0,
            recv_seq: 0,
            disconnected: false,
            stats: FaultStats::default(),
        }
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// True while an injected disconnect is in force.
    pub fn is_disconnected(&self) -> bool {
        self.disconnected
    }

    /// Clears an injected disconnect, modelling the caller
    /// re-establishing the connection.
    pub fn reconnect(&mut self) {
        if self.disconnected {
            self.disconnected = false;
            self.stats.reconnects += 1;
        }
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn garble(&self, key: &str, payload: &[u8]) -> Vec<u8> {
        // Corruption is keyed like the fault itself, so a garbled
        // payload is reproducible byte-for-byte.
        let mut rng = DetRng::seed(self.plan.seed()).derive("garble").derive(key);
        payload
            .iter()
            .map(|&b| b ^ (1 + rng.gen_range(255)) as u8)
            .collect()
    }

    fn send_inner(
        &mut self,
        message: &[u8],
        timeout: Option<Duration>,
    ) -> Result<(), TransportError> {
        if self.disconnected {
            return Err(TransportError::Closed);
        }
        let key = format!("{}.send.{}", self.label, self.send_seq);
        self.send_seq += 1;
        let fault = self.plan.decide(&key, 0);
        let deliver = |me: &mut Self, payload: &[u8]| match timeout {
            Some(t) => me.inner.send_timeout(payload, t),
            None => me.inner.send(payload),
        };
        match fault {
            None => deliver(self, message),
            Some(Fault::Drop) => {
                self.stats.drops += 1;
                Ok(())
            }
            Some(Fault::Delay { ms }) => {
                self.stats.delays += 1;
                self.stats.delayed_ms += ms;
                deliver(self, message)
            }
            Some(Fault::Disconnect) => {
                self.disconnected = true;
                self.stats.disconnects += 1;
                Err(TransportError::Closed)
            }
            Some(Fault::Garble) => {
                self.stats.garbles += 1;
                let garbled = self.garble(&key, message);
                deliver(self, &garbled)
            }
            // `decide` never emits Crash (process death is the
            // supervisor's, not the transport's); defensively a stall.
            Some(Fault::Stall) | Some(Fault::Crash) => {
                self.stats.stalls += 1;
                Err(TransportError::Timeout)
            }
        }
    }

    fn recv_inner(&mut self, timeout: Option<Duration>) -> Result<Vec<u8>, TransportError> {
        if self.disconnected {
            return Err(TransportError::Closed);
        }
        let key = format!("{}.recv.{}", self.label, self.recv_seq);
        self.recv_seq += 1;
        let fault = self.plan.decide(&key, 0);
        let deliver = |me: &mut Self| match timeout {
            Some(t) => me.inner.recv_timeout(t),
            None => me.inner.recv(),
        };
        match fault {
            None => deliver(self),
            Some(Fault::Drop) => {
                // The response is consumed in flight and lost; the
                // caller observes a timeout.
                self.stats.drops += 1;
                let _ = deliver(self)?;
                Err(TransportError::Timeout)
            }
            Some(Fault::Delay { ms }) => {
                self.stats.delays += 1;
                self.stats.delayed_ms += ms;
                deliver(self)
            }
            Some(Fault::Disconnect) => {
                self.disconnected = true;
                self.stats.disconnects += 1;
                Err(TransportError::Closed)
            }
            Some(Fault::Garble) => {
                self.stats.garbles += 1;
                let payload = deliver(self)?;
                Ok(self.garble(&key, &payload))
            }
            Some(Fault::Stall) | Some(Fault::Crash) => {
                self.stats.stalls += 1;
                Err(TransportError::Timeout)
            }
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, message: &[u8]) -> Result<(), TransportError> {
        self.send_inner(message, None)
    }

    fn send_timeout(&mut self, message: &[u8], timeout: Duration) -> Result<(), TransportError> {
        self.send_inner(message, Some(timeout))
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.recv_inner(None)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.recv_inner(Some(timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel_pair;
    use minedig_primitives::fault::FaultConfig;

    fn only(kind: usize, seed: u64) -> FaultPlan {
        let mut kind_weights = [0.0; 5];
        kind_weights[kind] = 1.0;
        FaultPlan::with_config(
            seed,
            FaultConfig {
                fault_prob: 1.0,
                kind_weights,
                ..FaultConfig::default()
            },
        )
    }

    #[test]
    fn no_faults_is_a_transparent_wrapper() {
        let (a, mut b) = channel_pair();
        let plan = FaultPlan::transient_only(1, 0.0);
        let mut a = FaultyTransport::new(a, plan, "t");
        a.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        b.send(b"world").unwrap();
        assert_eq!(a.recv().unwrap(), b"world");
        assert_eq!(a.stats().injected(), 0);
    }

    #[test]
    fn drop_loses_the_message_silently() {
        let (a, mut b) = channel_pair();
        let mut a = FaultyTransport::new(a, only(0, 2), "t");
        a.send(b"gone").unwrap();
        assert_eq!(a.stats().drops, 1);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn drop_on_recv_consumes_and_times_out() {
        let (a, mut b) = channel_pair();
        let mut a = FaultyTransport::new(a, only(0, 3), "t");
        b.send(b"eaten").unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(20)),
            Err(TransportError::Timeout)
        );
        assert_eq!(a.stats().drops, 1);
    }

    #[test]
    fn delay_delivers_late_but_intact() {
        let (a, mut b) = channel_pair();
        let mut a = FaultyTransport::new(a, only(1, 4), "t");
        a.send(b"late").unwrap();
        assert_eq!(b.recv().unwrap(), b"late");
        assert_eq!(a.stats().delays, 1);
        assert!(a.stats().delayed_ms > 0);
    }

    #[test]
    fn disconnect_closes_until_reconnect() {
        let (a, mut b) = channel_pair();
        let mut a = FaultyTransport::new(a, only(2, 5), "t");
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
        assert!(a.is_disconnected());
        // Every operation fails while down, with no new faults drawn.
        assert_eq!(
            a.recv_timeout(Duration::from_millis(1)),
            Err(TransportError::Closed)
        );
        assert_eq!(a.stats().disconnects, 1);
        a.reconnect();
        assert!(!a.is_disconnected());
        assert_eq!(a.stats().reconnects, 1);
        // The next send draws a fresh (here: also Disconnect) decision,
        // proving the wrapper is live again rather than wedged.
        let _ = a.send(b"y");
        drop(b.recv_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn garble_corrupts_deterministically() {
        let run = || {
            let (a, mut b) = channel_pair();
            let mut a = FaultyTransport::new(a, only(3, 6), "t");
            a.send(b"payload").unwrap();
            b.recv().unwrap()
        };
        let first = run();
        assert_ne!(first, b"payload".to_vec());
        assert_eq!(first.len(), 7);
        assert_eq!(first, run(), "garbling must be reproducible");
    }

    #[test]
    fn stall_times_out_without_consuming() {
        let (a, mut b) = channel_pair();
        let mut a = FaultyTransport::new(a, only(4, 7), "t");
        b.send(b"still there").unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Timeout)
        );
        assert_eq!(a.stats().stalls, 1);
        // A clean plan sees the message still queued.
        let inner = a.into_inner();
        let mut clean = FaultyTransport::new(inner, FaultPlan::transient_only(7, 0.0), "t2");
        assert_eq!(clean.recv().unwrap(), b"still there");
    }

    #[test]
    fn schedule_is_deterministic_by_seed_and_label() {
        let schedule = |seed: u64, label: &str| {
            let (a, _b) = channel_pair();
            let mut a = FaultyTransport::new(a, FaultPlan::transient_only(seed, 0.5), label);
            let mut outcomes = Vec::new();
            for i in 0..100u32 {
                let r = a.send(&i.to_le_bytes());
                outcomes.push(r.is_ok());
                a.reconnect();
            }
            (outcomes, a.stats().clone())
        };
        let (o1, s1) = schedule(42, "endpoint-0");
        let (o2, s2) = schedule(42, "endpoint-0");
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        let (o3, _) = schedule(43, "endpoint-0");
        let (o4, _) = schedule(42, "endpoint-1");
        assert_ne!(o1, o3, "different seed must reshuffle the schedule");
        assert_ne!(o1, o4, "different label must reshuffle the schedule");
        assert!(s1.injected() > 0, "p=0.5 over 100 ops must inject faults");
    }
}
