//! RFC 6455-style WebSocket frame codec.
//!
//! The Coinhive miner speaks JSON over WebSockets; the paper instruments
//! Chrome specifically to capture that traffic (§3.2) and connects to the
//! pool's WebSocket endpoints directly (§4.2). This module implements the
//! on-the-wire frame layer: FIN bit + opcode, 7/16/64-bit payload lengths,
//! and client-to-server masking. The HTTP upgrade handshake is out of
//! scope — the TCP transport starts framing immediately — but the frame
//! format itself is the real one, so captured byte streams look like
//! WebSocket traffic to the instrumentation layer.

use bytes::{Buf, BufMut, BytesMut};

/// Frame opcodes (the subset we use).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opcode {
    /// UTF-8 text payload (all protocol messages are JSON text).
    Text,
    /// Binary payload.
    Binary,
    /// Connection close.
    Close,
    /// Ping.
    Ping,
    /// Pong.
    Pong,
}

impl Opcode {
    fn to_bits(self) -> u8 {
        match self {
            Opcode::Text => 0x1,
            Opcode::Binary => 0x2,
            Opcode::Close => 0x8,
            Opcode::Ping => 0x9,
            Opcode::Pong => 0xa,
        }
    }

    fn from_bits(bits: u8) -> Option<Opcode> {
        match bits {
            0x1 => Some(Opcode::Text),
            0x2 => Some(Opcode::Binary),
            0x8 => Some(Opcode::Close),
            0x9 => Some(Opcode::Ping),
            0xa => Some(Opcode::Pong),
            _ => None,
        }
    }
}

/// A decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WsFrame {
    /// Frame opcode.
    pub opcode: Opcode,
    /// Unmasked payload bytes.
    pub payload: Vec<u8>,
}

/// Decode errors; any of these should terminate the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsError {
    /// Reserved bits set or fragmented frames (unsupported).
    Unsupported(&'static str),
    /// Unknown opcode.
    BadOpcode(u8),
    /// Payload larger than the sanity limit.
    TooLarge(u64),
}

impl std::fmt::Display for WsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WsError::Unsupported(what) => write!(f, "unsupported ws feature: {what}"),
            WsError::BadOpcode(op) => write!(f, "unknown ws opcode {op:#x}"),
            WsError::TooLarge(n) => write!(f, "ws payload of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for WsError {}

/// Payload sanity limit (matches [`crate::frame::MAX_FRAME_LEN`]).
pub const MAX_PAYLOAD: u64 = crate::frame::MAX_FRAME_LEN as u64;

/// Encodes a frame. `mask` is `Some(key)` for client→server frames (the
/// RFC requires clients to mask) and `None` for server→client frames.
pub fn encode_ws(out: &mut BytesMut, opcode: Opcode, payload: &[u8], mask: Option<[u8; 4]>) {
    out.reserve(payload.len() + 14);
    out.put_u8(0x80 | opcode.to_bits()); // FIN + opcode
    let mask_bit = if mask.is_some() { 0x80u8 } else { 0 };
    let len = payload.len();
    if len < 126 {
        out.put_u8(mask_bit | len as u8);
    } else if len <= u16::MAX as usize {
        out.put_u8(mask_bit | 126);
        out.put_u16(len as u16);
    } else {
        out.put_u8(mask_bit | 127);
        out.put_u64(len as u64);
    }
    match mask {
        Some(key) => {
            out.put_slice(&key);
            for (i, &b) in payload.iter().enumerate() {
                out.put_u8(b ^ key[i % 4]);
            }
        }
        None => out.put_slice(payload),
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed; consumes the frame on
/// success.
pub fn decode_ws(buf: &mut BytesMut) -> Result<Option<WsFrame>, WsError> {
    if buf.len() < 2 {
        return Ok(None);
    }
    let b0 = buf[0];
    let b1 = buf[1];
    if b0 & 0x70 != 0 {
        return Err(WsError::Unsupported("rsv bits"));
    }
    if b0 & 0x80 == 0 {
        return Err(WsError::Unsupported("fragmentation"));
    }
    let opcode = Opcode::from_bits(b0 & 0x0f).ok_or(WsError::BadOpcode(b0 & 0x0f))?;
    let masked = b1 & 0x80 != 0;
    let len7 = (b1 & 0x7f) as u64;
    let mut header = 2usize;
    let payload_len = match len7 {
        126 => {
            if buf.len() < 4 {
                return Ok(None);
            }
            header = 4;
            u16::from_be_bytes(buf[2..4].try_into().unwrap()) as u64
        }
        127 => {
            if buf.len() < 10 {
                return Ok(None);
            }
            header = 10;
            u64::from_be_bytes(buf[2..10].try_into().unwrap())
        }
        n => n,
    };
    if payload_len > MAX_PAYLOAD {
        return Err(WsError::TooLarge(payload_len));
    }
    let mask_len = if masked { 4 } else { 0 };
    let total = header + mask_len + payload_len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    buf.advance(header);
    let key: Option<[u8; 4]> = if masked {
        let k = buf.split_to(4);
        Some([k[0], k[1], k[2], k[3]])
    } else {
        None
    };
    let mut payload = buf.split_to(payload_len as usize).to_vec();
    if let Some(key) = key {
        for (i, b) in payload.iter_mut().enumerate() {
            *b ^= key[i % 4];
        }
    }
    Ok(Some(WsFrame { opcode, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unmasked_roundtrip() {
        let mut buf = BytesMut::new();
        encode_ws(&mut buf, Opcode::Text, b"{\"t\":1}", None);
        let f = decode_ws(&mut buf).unwrap().unwrap();
        assert_eq!(f.opcode, Opcode::Text);
        assert_eq!(f.payload, b"{\"t\":1}");
        assert!(buf.is_empty());
    }

    #[test]
    fn masked_roundtrip() {
        let mut buf = BytesMut::new();
        encode_ws(&mut buf, Opcode::Binary, b"secret", Some([1, 2, 3, 4]));
        // Masked payload must differ from plaintext on the wire.
        assert!(!buf.windows(6).any(|w| w == b"secret"));
        let f = decode_ws(&mut buf).unwrap().unwrap();
        assert_eq!(f.payload, b"secret");
    }

    #[test]
    fn medium_length_uses_16bit_form() {
        let payload = vec![7u8; 300];
        let mut buf = BytesMut::new();
        encode_ws(&mut buf, Opcode::Binary, &payload, None);
        assert_eq!(buf[1] & 0x7f, 126);
        let f = decode_ws(&mut buf).unwrap().unwrap();
        assert_eq!(f.payload.len(), 300);
    }

    #[test]
    fn large_length_uses_64bit_form() {
        let payload = vec![7u8; 70_000];
        let mut buf = BytesMut::new();
        encode_ws(&mut buf, Opcode::Binary, &payload, None);
        assert_eq!(buf[1] & 0x7f, 127);
        let f = decode_ws(&mut buf).unwrap().unwrap();
        assert_eq!(f.payload.len(), 70_000);
    }

    #[test]
    fn incomplete_frames_wait() {
        let mut full = BytesMut::new();
        encode_ws(&mut full, Opcode::Text, b"hello world", Some([9, 9, 9, 9]));
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert_eq!(decode_ws(&mut partial).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn control_frames() {
        for op in [Opcode::Close, Opcode::Ping, Opcode::Pong] {
            let mut buf = BytesMut::new();
            encode_ws(&mut buf, op, b"", None);
            assert_eq!(decode_ws(&mut buf).unwrap().unwrap().opcode, op);
        }
    }

    #[test]
    fn rejects_reserved_bits_and_bad_opcodes() {
        let mut buf = BytesMut::from(&[0xf1u8, 0x00][..]); // rsv bits set
        assert!(matches!(decode_ws(&mut buf), Err(WsError::Unsupported(_))));
        let mut buf = BytesMut::from(&[0x83u8, 0x00][..]); // opcode 0x3
        assert!(matches!(decode_ws(&mut buf), Err(WsError::BadOpcode(3))));
        let mut buf = BytesMut::from(&[0x01u8, 0x00][..]); // FIN unset
        assert!(matches!(decode_ws(&mut buf), Err(WsError::Unsupported(_))));
    }

    #[test]
    fn rejects_oversized_declared_payload() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x82);
        buf.put_u8(127);
        buf.put_u64(u64::MAX);
        assert!(matches!(decode_ws(&mut buf), Err(WsError::TooLarge(_))));
    }

    #[test]
    fn payload_cap_boundary_is_exact() {
        // A header declaring exactly MAX_PAYLOAD is legal (the decoder
        // waits for the bytes); one more byte is refused before any
        // payload is buffered.
        let mut buf = BytesMut::new();
        buf.put_u8(0x82);
        buf.put_u8(127);
        buf.put_u64(MAX_PAYLOAD);
        assert_eq!(decode_ws(&mut buf), Ok(None));

        let mut buf = BytesMut::new();
        buf.put_u8(0x82);
        buf.put_u8(127);
        buf.put_u64(MAX_PAYLOAD + 1);
        assert_eq!(decode_ws(&mut buf), Err(WsError::TooLarge(MAX_PAYLOAD + 1)));
    }

    proptest! {
        #[test]
        fn roundtrip_any_payload(
            payload in prop::collection::vec(any::<u8>(), 0..2048),
            key in any::<Option<[u8; 4]>>(),
            text in any::<bool>(),
        ) {
            let op = if text { Opcode::Text } else { Opcode::Binary };
            let mut buf = BytesMut::new();
            encode_ws(&mut buf, op, &payload, key);
            let f = decode_ws(&mut buf).unwrap().unwrap();
            prop_assert_eq!(f.opcode, op);
            prop_assert_eq!(f.payload, payload);
            prop_assert!(buf.is_empty());
        }

        #[test]
        fn streamed_frames_all_decode(
            payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..8),
        ) {
            let mut wire = BytesMut::new();
            for p in &payloads {
                encode_ws(&mut wire, Opcode::Binary, p, Some([1,2,3,4]));
            }
            let mut out = Vec::new();
            while let Some(f) = decode_ws(&mut wire).unwrap() {
                out.push(f.payload);
            }
            prop_assert_eq!(out, payloads);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn roundtrip_at_length_boundaries(
            len_ix in 0usize..4,
            op_ix in 0usize..5,
            key in any::<Option<[u8; 4]>>(),
        ) {
            // The exact edges of the three length encodings: the last
            // 7-bit length, the first 16-bit one, the last 16-bit one,
            // and the first 64-bit one.
            let len = [125usize, 126, 65_535, 65_536][len_ix];
            let op = [
                Opcode::Text,
                Opcode::Binary,
                Opcode::Close,
                Opcode::Ping,
                Opcode::Pong,
            ][op_ix];
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut buf = BytesMut::new();
            encode_ws(&mut buf, op, &payload, key);
            let expected_form = match len {
                0..=125 => len as u8,
                126..=65_535 => 126,
                _ => 127,
            };
            prop_assert_eq!(buf[1] & 0x7f, expected_form);
            prop_assert_eq!(buf[1] & 0x80 != 0, key.is_some());
            let f = decode_ws(&mut buf).unwrap().unwrap();
            prop_assert_eq!(f.opcode, op);
            prop_assert_eq!(f.payload, payload);
            prop_assert!(buf.is_empty());
        }
    }

    proptest! {
        #[test]
        fn byte_at_a_time_delivery_decodes_exactly_once(
            payload in prop::collection::vec(any::<u8>(), 0..300),
            key in any::<Option<[u8; 4]>>(),
        ) {
            // A TCP stream can deliver a frame in arbitrarily small
            // pieces; the decoder must keep answering `Ok(None)` until
            // the very last byte arrives and never consume a partial
            // frame from the buffer.
            let mut wire = BytesMut::new();
            encode_ws(&mut wire, Opcode::Binary, &payload, key);
            let mut buf = BytesMut::new();
            let mut decoded = None;
            for (i, &b) in wire.iter().enumerate() {
                buf.put_u8(b);
                match decode_ws(&mut buf).unwrap() {
                    Some(f) => {
                        prop_assert_eq!(i, wire.len() - 1, "decoded before the last byte");
                        decoded = Some(f);
                    }
                    None => prop_assert!(i < wire.len() - 1, "missing frame at final byte"),
                }
            }
            let f = decoded.expect("frame must decode at the final byte");
            prop_assert_eq!(f.opcode, Opcode::Binary);
            prop_assert_eq!(f.payload, payload);
            prop_assert!(buf.is_empty());
        }
    }
}
