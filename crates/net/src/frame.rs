//! Length-prefixed message framing over arbitrary byte streams.
//!
//! The simplest possible codec — a little-endian `u32` length followed by
//! the payload — used where WebSocket semantics are not needed (e.g. the
//! deterministic in-process transports) and as a reference implementation
//! for the fuzz-style property tests.

use bytes::{Buf, BufMut, BytesMut};

/// Upper bound on a single frame; protects servers from hostile lengths.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Framing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends a frame containing `payload` to `out`.
pub fn encode_frame(out: &mut BytesMut, payload: &[u8]) {
    out.reserve(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some(payload))` and consumes the frame when complete,
/// `Ok(None)` when more bytes are needed, and an error on an oversized
/// declared length (the connection should then be dropped).
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Vec<u8>>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let payload = buf.split_to(len).to_vec();
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_single() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"hello");
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(b"hello".to_vec()));
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_payload() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"");
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(Vec::new()));
    }

    #[test]
    fn partial_header_needs_more() {
        let mut buf = BytesMut::from(&[1u8, 0][..]);
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
        assert_eq!(buf.len(), 2); // untouched
    }

    #[test]
    fn partial_body_needs_more() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"hello");
        let _ = buf.split_off(6); // keep header + 2 payload bytes
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_frame(&mut buf),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"one");
        encode_frame(&mut buf, b"two");
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(b"one".to_vec()));
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(b"two".to_vec()));
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    proptest! {
        #[test]
        fn roundtrip_many(payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..256), 0..16)
        ) {
            let mut buf = BytesMut::new();
            for p in &payloads {
                encode_frame(&mut buf, p);
            }
            for p in &payloads {
                prop_assert_eq!(decode_frame(&mut buf).unwrap(), Some(p.clone()));
            }
            prop_assert_eq!(decode_frame(&mut buf).unwrap(), None);
        }

        #[test]
        fn byte_at_a_time_delivery(payload in prop::collection::vec(any::<u8>(), 0..128)) {
            let mut full = BytesMut::new();
            encode_frame(&mut full, &payload);
            let mut buf = BytesMut::new();
            let mut decoded = None;
            for &b in full.iter() {
                buf.put_u8(b);
                if let Some(p) = decode_frame(&mut buf).unwrap() {
                    decoded = Some(p);
                }
            }
            prop_assert_eq!(decoded, Some(payload));
        }
    }
}
