//! Async adapters plugging [`Transport`]s into the cooperative executor.
//!
//! The runtime in `minedig_primitives::aexec` abstracts I/O as
//! [`IoPoll`]: a source the executor re-polls on its idle sweeps. This
//! module adapts the blocking [`Transport`] trait onto that interface
//! with zero-timeout receives — `recv_timeout(Duration::ZERO)` either
//! returns a ready message immediately or reports
//! [`TransportError::Timeout`], which maps to `Poll::Pending`.
//!
//! Because [`FaultyTransport`](crate::fault::FaultyTransport) is itself
//! a [`Transport`], the same adapter carries fault-injected endpoints:
//! an injected delay or stall surfaces as extra pending polls, a
//! disconnect as an error value — the async task observes exactly what a
//! blocking caller would, just without parking a thread per connection.
//!
//! For runs over real sockets, [`MultiParkWait`] is the matching idle
//! strategy: a `poll(2)`-style wait over every registered
//! [`TcpParker`] that wakes the executor's sweep as soon as *any*
//! endpoint turns readable.

use crate::tcp::TcpParker;
use crate::transport::{Transport, TransportError};
use minedig_primitives::aexec::{IdleWait, IoPoll};
use std::sync::{Arc, Mutex};
use std::task::Poll;
use std::time::Duration;

/// An [`IoPoll`] source that completes with the next message received on
/// a transport. Build one with [`recv_ready`], await it via
/// [`Ctx::io`](minedig_primitives::aexec::Ctx::io).
pub struct RecvReady<'a, T: Transport> {
    transport: &'a mut T,
}

/// Readiness-based receive: resolves to the next inbound message, or the
/// transport's terminal error. A [`TransportError::Timeout`] from the
/// zero-timeout poll means "nothing yet" and keeps the source pending —
/// it is never surfaced as a result.
pub fn recv_ready<T: Transport>(transport: &mut T) -> RecvReady<'_, T> {
    RecvReady { transport }
}

impl<T: Transport> IoPoll for RecvReady<'_, T> {
    type Out = Result<Vec<u8>, TransportError>;

    fn poll_io(&mut self) -> Poll<Self::Out> {
        match self.transport.recv_timeout(Duration::ZERO) {
            Err(TransportError::Timeout) => Poll::Pending,
            other => Poll::Ready(other),
        }
    }
}

/// A clonable registration handle for [`MultiParkWait`]: connection
/// factories (which run mid-sweep, while the executor owns the idle
/// strategy) push each new socket's parker through this instead of
/// touching the strategy directly.
#[derive(Clone)]
pub struct MultiParkRegistrar {
    parkers: Arc<Mutex<Vec<TcpParker>>>,
}

impl MultiParkRegistrar {
    /// Adds a socket to the idle strategy's watch set. Takes effect on
    /// the next idle sweep.
    pub fn register(&self, parker: TcpParker) {
        self.parkers.lock().unwrap().push(parker);
    }
}

/// A `poll(2)`-style multi-socket [`IdleWait`]: the idle sweep wakes as
/// soon as *any* registered endpoint turns readable, instead of
/// blocking on one designated parker's socket while the others starve.
///
/// The standard library exposes no multi-fd readiness syscall, so the
/// wait budget is sliced round-robin across the registered parkers:
/// each gets `budget / len` (floored to [`TcpParker::wait`]'s 1 ms
/// minimum) and the sweep returns at the first parker that reports
/// readable bytes. The rotation start advances every sweep, and picks
/// up after the last ready socket, so detection latency is bounded by
/// one budget for every endpoint regardless of which one the peer
/// writes to. With no parkers registered yet the strategy degrades to
/// a plain yield, like [`YieldBackoff`](minedig_primitives::aexec::YieldBackoff).
///
/// As with every [`IdleWait`], this only runs when no task is ready and
/// no timer is due, so outcomes stay bit-identical to the other
/// strategies — only CPU burn and `io_repolls` change.
pub struct MultiParkWait {
    parkers: Arc<Mutex<Vec<TcpParker>>>,
    budget: Duration,
    next: usize,
    parks: u64,
}

impl MultiParkWait {
    /// A strategy spending up to `budget` per idle sweep across all
    /// registered sockets.
    pub fn new(budget: Duration) -> MultiParkWait {
        MultiParkWait {
            parkers: Arc::new(Mutex::new(Vec::new())),
            budget,
            next: 0,
            parks: 0,
        }
    }

    /// A handle for registering sockets, usable from connection
    /// factories while the strategy itself is lent to the executor.
    pub fn registrar(&self) -> MultiParkRegistrar {
        MultiParkRegistrar {
            parkers: self.parkers.clone(),
        }
    }

    /// Sockets currently in the watch set.
    pub fn watched(&self) -> usize {
        self.parkers.lock().unwrap().len()
    }

    /// Idle sweeps that actually parked on at least one socket
    /// (observability for tests and reports).
    pub fn parks(&self) -> u64 {
        self.parks
    }
}

impl IdleWait for MultiParkWait {
    fn wait(&mut self, consecutive: u32) {
        // Freshly registered or completed work gets one immediate
        // re-poll before the strategy commits to blocking.
        if consecutive == 0 {
            return;
        }
        let guard = self.parkers.lock().unwrap();
        if guard.is_empty() {
            drop(guard);
            std::thread::yield_now();
            return;
        }
        self.parks += 1;
        let len = guard.len();
        // TcpParker::wait floors zero to 1 ms, so a large watch set
        // degrades to 1 ms per socket rather than a busy spin.
        let slice = self.budget / len as u32;
        for step in 0..len {
            let idx = (self.next + step) % len;
            if guard[idx].wait(slice) {
                // Resume after the ready socket next sweep: its bytes
                // will be drained by the re-poll, and the remaining
                // endpoints get first claim on the next budget.
                self.next = (idx + 1) % len;
                return;
            }
        }
        self.next = (self.next + 1) % len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyTransport;
    use crate::transport::channel_pair;
    use minedig_primitives::aexec::{block_on, AsyncExecutor};
    use minedig_primitives::fault::FaultPlan;
    use std::ops::ControlFlow;

    #[test]
    fn recv_ready_completes_when_a_message_is_already_buffered() {
        let (mut a, mut b) = channel_pair();
        a.send(b"job").unwrap();
        let got = block_on(|ctx| {
            let source = recv_ready(&mut b);
            async move { ctx.io(source).await }
        });
        assert_eq!(got.unwrap(), b"job");
    }

    #[test]
    fn recv_ready_waits_for_a_cross_thread_sender() {
        let (mut a, mut b) = channel_pair();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a.send(b"late").unwrap();
            a // keep the channel open until after the send
        });
        let got = block_on(|ctx| {
            let source = recv_ready(&mut b);
            async move { ctx.io(source).await }
        });
        assert_eq!(got.unwrap(), b"late");
        drop(sender.join().unwrap());
    }

    #[test]
    fn recv_ready_surfaces_closure_as_an_error() {
        let (a, mut b) = channel_pair();
        drop(a);
        let got = block_on(|ctx| {
            let source = recv_ready(&mut b);
            async move { ctx.io(source).await }
        });
        assert_eq!(got.unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn faulty_transport_rides_the_same_adapter() {
        // A fault-free plan (probability 0) delivers everything; the
        // point is that the decorated transport satisfies the adapter.
        let (mut a, b) = channel_pair();
        let mut faulty = FaultyTransport::new(b, FaultPlan::transient_only(5, 0.0), "aio");
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        let got = block_on(|ctx| async move {
            let first = ctx.io(recv_ready(&mut faulty)).await;
            let second = ctx.io(recv_ready(&mut faulty)).await;
            (first, second)
        });
        assert_eq!(got.0.unwrap(), b"one");
        assert_eq!(got.1.unwrap(), b"two");
    }

    #[test]
    fn multi_park_with_no_sockets_degrades_to_a_yield() {
        let mut w = MultiParkWait::new(Duration::from_millis(50));
        w.wait(0);
        w.wait(1);
        w.wait(7);
        assert_eq!(w.watched(), 0);
        assert_eq!(w.parks(), 0, "an empty watch set must never park");
    }

    #[test]
    fn multi_park_wakes_when_any_registered_socket_turns_readable() {
        use crate::tcp::{TcpServer, TcpTransport};
        use std::sync::atomic::{AtomicU64, Ordering};

        // Exactly one of the three server sessions writes (after a
        // short delay); the others stay silent past the whole test.
        let turn = Arc::new(AtomicU64::new(0));
        let turn2 = turn.clone();
        let server = TcpServer::spawn("127.0.0.1:0", move |mut t| {
            let i = turn2.fetch_add(1, Ordering::SeqCst);
            if i == 2 {
                std::thread::sleep(Duration::from_millis(10));
                let _ = t.send(b"ready");
            }
            std::thread::sleep(Duration::from_millis(500));
        })
        .expect("bind");

        let mut transports: Vec<TcpTransport> = (0..3)
            .map(|_| TcpTransport::connect(server.addr()).expect("connect"))
            .collect();
        let mut w = MultiParkWait::new(Duration::from_millis(240));
        let reg = w.registrar();
        for t in &transports {
            reg.register(t.parker().expect("parker"));
        }
        assert_eq!(w.watched(), 3);

        w.wait(0);
        assert_eq!(w.parks(), 0, "sweep zero must re-poll, not park");

        // The park must return once the writing socket (whichever slot
        // it landed in) turns readable — well before silent sockets
        // could have eaten a full budget each.
        let start = std::time::Instant::now();
        w.wait(1);
        assert_eq!(w.parks(), 1);
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "park must wake on the ready socket, not drain every slice"
        );
        let msg = transports
            .iter_mut()
            .find_map(|t| t.recv_timeout(Duration::from_millis(50)).ok())
            .expect("one socket must hold the greeting");
        assert_eq!(msg, b"ready");

        drop(server);
    }

    #[test]
    fn multi_park_rotation_covers_silent_sockets() {
        use crate::tcp::{TcpServer, TcpTransport};

        // All-silent sockets: each sweep must consume its sliced
        // budget and advance the rotation start so no socket is pinned
        // as the perpetual first (and only meaningfully watched) slot.
        let server = TcpServer::spawn("127.0.0.1:0", move |_t| {
            std::thread::sleep(Duration::from_millis(500));
        })
        .expect("bind");
        let transports: Vec<TcpTransport> = (0..2)
            .map(|_| TcpTransport::connect(server.addr()).expect("connect"))
            .collect();
        let mut w = MultiParkWait::new(Duration::from_millis(8));
        let reg = w.registrar();
        for t in &transports {
            reg.register(t.parker().expect("parker"));
        }
        assert_eq!(w.next, 0);
        w.wait(1);
        assert_eq!(w.next, 1, "a dry sweep must advance the rotation");
        w.wait(2);
        assert_eq!(w.next, 0);
        assert_eq!(w.parks(), 2);
        drop(server);
    }

    #[test]
    fn many_receives_interleave_on_one_thread() {
        // A token ring of 8 transports, one async task each, all in
        // flight at once on the single executor thread. Only the last
        // task's inbox is seeded; every other task must park on the
        // idle I/O sweep until its predecessor forwards the token —
        // no real threads, so the whole schedule is deterministic.
        const N: usize = 8;
        let mut locals = Vec::new();
        let mut peers = Vec::new();
        for _ in 0..N {
            let (local, peer) = channel_pair();
            locals.push(local);
            peers.push(peer);
        }
        peers[N - 1].send(b"token").unwrap();
        // Task i receives on local i and forwards to inbox (i+1) % N.
        peers.rotate_left(1);
        let items = locals.iter_mut().zip(peers).enumerate();
        let run = AsyncExecutor::new(N).run_ordered(
            items,
            |ctx, (i, (local, mut next))| async move {
                let msg = ctx.io(recv_ready(local)).await.unwrap();
                let _ = next.send(&msg);
                (i, msg)
            },
            Vec::new(),
            |acc: &mut Vec<(usize, Vec<u8>)>, out| {
                acc.push(out);
                ControlFlow::Continue(())
            },
        );
        assert_eq!(run.outcome.len(), N);
        for (i, msg) in run.outcome.iter().enumerate() {
            assert_eq!(msg, &(i, b"token".to_vec()));
        }
        assert_eq!(run.stats.in_flight_high_water, N as u64);
        assert!(run.stats.io_repolls > 0, "receives must park on the sweep");
    }
}
