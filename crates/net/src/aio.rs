//! Async adapters plugging [`Transport`]s into the cooperative executor.
//!
//! The runtime in `minedig_primitives::aexec` abstracts I/O as
//! [`IoPoll`]: a source the executor re-polls on its idle sweeps. This
//! module adapts the blocking [`Transport`] trait onto that interface
//! with zero-timeout receives — `recv_timeout(Duration::ZERO)` either
//! returns a ready message immediately or reports
//! [`TransportError::Timeout`], which maps to `Poll::Pending`.
//!
//! Because [`FaultyTransport`](crate::fault::FaultyTransport) is itself
//! a [`Transport`], the same adapter carries fault-injected endpoints:
//! an injected delay or stall surfaces as extra pending polls, a
//! disconnect as an error value — the async task observes exactly what a
//! blocking caller would, just without parking a thread per connection.

use crate::transport::{Transport, TransportError};
use minedig_primitives::aexec::IoPoll;
use std::task::Poll;
use std::time::Duration;

/// An [`IoPoll`] source that completes with the next message received on
/// a transport. Build one with [`recv_ready`], await it via
/// [`Ctx::io`](minedig_primitives::aexec::Ctx::io).
pub struct RecvReady<'a, T: Transport> {
    transport: &'a mut T,
}

/// Readiness-based receive: resolves to the next inbound message, or the
/// transport's terminal error. A [`TransportError::Timeout`] from the
/// zero-timeout poll means "nothing yet" and keeps the source pending —
/// it is never surfaced as a result.
pub fn recv_ready<T: Transport>(transport: &mut T) -> RecvReady<'_, T> {
    RecvReady { transport }
}

impl<T: Transport> IoPoll for RecvReady<'_, T> {
    type Out = Result<Vec<u8>, TransportError>;

    fn poll_io(&mut self) -> Poll<Self::Out> {
        match self.transport.recv_timeout(Duration::ZERO) {
            Err(TransportError::Timeout) => Poll::Pending,
            other => Poll::Ready(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyTransport;
    use crate::transport::channel_pair;
    use minedig_primitives::aexec::{block_on, AsyncExecutor};
    use minedig_primitives::fault::FaultPlan;
    use std::ops::ControlFlow;

    #[test]
    fn recv_ready_completes_when_a_message_is_already_buffered() {
        let (mut a, mut b) = channel_pair();
        a.send(b"job").unwrap();
        let got = block_on(|ctx| {
            let source = recv_ready(&mut b);
            async move { ctx.io(source).await }
        });
        assert_eq!(got.unwrap(), b"job");
    }

    #[test]
    fn recv_ready_waits_for_a_cross_thread_sender() {
        let (mut a, mut b) = channel_pair();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a.send(b"late").unwrap();
            a // keep the channel open until after the send
        });
        let got = block_on(|ctx| {
            let source = recv_ready(&mut b);
            async move { ctx.io(source).await }
        });
        assert_eq!(got.unwrap(), b"late");
        drop(sender.join().unwrap());
    }

    #[test]
    fn recv_ready_surfaces_closure_as_an_error() {
        let (a, mut b) = channel_pair();
        drop(a);
        let got = block_on(|ctx| {
            let source = recv_ready(&mut b);
            async move { ctx.io(source).await }
        });
        assert_eq!(got.unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn faulty_transport_rides_the_same_adapter() {
        // A fault-free plan (probability 0) delivers everything; the
        // point is that the decorated transport satisfies the adapter.
        let (mut a, b) = channel_pair();
        let mut faulty = FaultyTransport::new(b, FaultPlan::transient_only(5, 0.0), "aio");
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        let got = block_on(|ctx| async move {
            let first = ctx.io(recv_ready(&mut faulty)).await;
            let second = ctx.io(recv_ready(&mut faulty)).await;
            (first, second)
        });
        assert_eq!(got.0.unwrap(), b"one");
        assert_eq!(got.1.unwrap(), b"two");
    }

    #[test]
    fn many_receives_interleave_on_one_thread() {
        // A token ring of 8 transports, one async task each, all in
        // flight at once on the single executor thread. Only the last
        // task's inbox is seeded; every other task must park on the
        // idle I/O sweep until its predecessor forwards the token —
        // no real threads, so the whole schedule is deterministic.
        const N: usize = 8;
        let mut locals = Vec::new();
        let mut peers = Vec::new();
        for _ in 0..N {
            let (local, peer) = channel_pair();
            locals.push(local);
            peers.push(peer);
        }
        peers[N - 1].send(b"token").unwrap();
        // Task i receives on local i and forwards to inbox (i+1) % N.
        peers.rotate_left(1);
        let items = locals.iter_mut().zip(peers).enumerate();
        let run = AsyncExecutor::new(N).run_ordered(
            items,
            |ctx, (i, (local, mut next))| async move {
                let msg = ctx.io(recv_ready(local)).await.unwrap();
                let _ = next.send(&msg);
                (i, msg)
            },
            Vec::new(),
            |acc: &mut Vec<(usize, Vec<u8>)>, out| {
                acc.push(out);
                ControlFlow::Continue(())
            },
        );
        assert_eq!(run.outcome.len(), N);
        for (i, msg) in run.outcome.iter().enumerate() {
            assert_eq!(msg, &(i, b"token".to_vec()));
        }
        assert_eq!(run.stats.in_flight_high_water, N as u64);
        assert!(run.stats.io_repolls > 0, "receives must park on the sweep");
    }
}
