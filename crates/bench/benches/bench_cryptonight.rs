//! Hash-rate characterization of the CryptoNight-style PoW.
//!
//! Anchors the short-link duration axis (Fig 4 assumes 20 H/s in a
//! browser) and the pool's share validation cost. `Full` matches the
//! 2 MiB/2^19-iteration CryptoNight v0 profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minedig_pow::{slow_hash, Variant};
use std::hint::black_box;

fn bench_slow_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("cryptonight");
    group.sample_size(10);
    for (label, variant) in [
        ("test", Variant::Test),
        ("lite", Variant::Lite),
        ("full", Variant::Full),
    ] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("slow_hash", label), &variant, |b, &v| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                let mut input = *b"bench-blob-____________";
                input[11..19].copy_from_slice(&nonce.to_le_bytes());
                black_box(slow_hash(&input, v))
            });
        });
    }
    group.finish();
}

fn bench_fast_hash(c: &mut Criterion) {
    let data = vec![0xa5u8; 76]; // hashing-blob sized input
    c.bench_function("keccak256_76B_blob", |b| {
        b.iter(|| black_box(minedig_primitives::keccak256(black_box(&data))))
    });
}

criterion_group!(benches, bench_slow_hash, bench_fast_hash);
criterion_main!(benches);
