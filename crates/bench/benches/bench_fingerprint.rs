//! Wasm parse + fingerprint + classify throughput (the per-module cost of
//! the §3.2 signature approach).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minedig_core::scan::build_reference_db;
use minedig_wasm::corpus::generate_corpus;
use minedig_wasm::fingerprint::fingerprint;
use minedig_wasm::module::Module;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let corpus = generate_corpus(0x1660);
    let binaries: Vec<Vec<u8>> = corpus.iter().map(|e| e.module.encode()).collect();
    let db = build_reference_db(0.7);

    let mut group = c.benchmark_group("fingerprint");
    group.throughput(Throughput::Elements(binaries.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| {
            for bytes in &binaries {
                black_box(Module::parse(black_box(bytes)).unwrap());
            }
        })
    });
    let modules: Vec<Module> = binaries.iter().map(|b| Module::parse(b).unwrap()).collect();
    group.bench_function("fingerprint", |b| {
        b.iter(|| {
            for m in &modules {
                black_box(fingerprint(black_box(m)));
            }
        })
    });
    let fps: Vec<_> = modules.iter().map(fingerprint).collect();
    group.bench_function("classify", |b| {
        b.iter(|| {
            let mut miners = 0usize;
            for fp in &fps {
                if db
                    .classify(black_box(fp))
                    .map(|m| m.class.is_miner())
                    .unwrap_or(false)
                {
                    miners += 1;
                }
            }
            black_box(miners)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
