//! Scan-executor scaling: the same zone scan at 1/2/4/8 shards.
//!
//! Outcomes are bit-identical at every shard count (enforced by the
//! proptests in `tests/parallel_scan.rs`), so this bench isolates pure
//! executor scaling. Expect near-linear throughput up to the physical
//! core count — on a single-core host every shard count measures the
//! same, which is itself worth seeing (sharding overhead ≈ 0).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minedig_core::exec::ScanExecutor;
use minedig_core::scan::build_reference_db;
use minedig_web::universe::Population;
use minedig_web::zone::Zone;
use std::hint::black_box;

const SEED: u64 = 2018;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// zgrab + NoCoin over ≥100k domains (~2k .org artifacts plus a 100k
/// clean sample — the shape of a real zone file walk).
fn bench_zgrab_shards(c: &mut Criterion) {
    let population = Population::generate(Zone::Org, SEED, 100_000);
    let domains = (population.artifacts.len() + population.clean_sample.len()) as u64;
    let mut group = c.benchmark_group("zgrab_scan_100k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(domains));
    for shards in SHARD_COUNTS {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &s| {
            let executor = ScanExecutor::new(s);
            b.iter(|| black_box(executor.zgrab(&population, SEED)))
        });
    }
    group.finish();
}

/// Instrumented-browser scan (page load + Wasm classification) — the
/// expensive pipeline, on a smaller population.
fn bench_chrome_shards(c: &mut Criterion) {
    let population = Population::generate(Zone::Org, SEED, 1_000);
    let db = build_reference_db(0.7);
    let domains = (population.artifacts.len() + population.clean_sample.len()) as u64;
    let mut group = c.benchmark_group("chrome_scan_org");
    group.sample_size(10);
    group.throughput(Throughput::Elements(domains));
    for shards in SHARD_COUNTS {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &s| {
            let executor = ScanExecutor::new(s);
            b.iter(|| black_box(executor.chrome(&population, &db, SEED)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zgrab_shards, bench_chrome_shards);
criterion_main!(benches);
