//! Short-link tooling throughput: enumeration and accounted resolution
//! (§4.1's two bulk operations).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minedig_shortlink::enumerate::enumerate_links;
use minedig_shortlink::ids::index_to_code;
use minedig_shortlink::model::{LinkPopulation, ModelConfig};
use minedig_shortlink::resolve::resolve_accounted;
use minedig_shortlink::service::ShortlinkService;
use std::hint::black_box;

const LINKS: u64 = 20_000;

fn config() -> ModelConfig {
    ModelConfig {
        total_links: LINKS,
        users: 2_000,
        seed: 3,
    }
}

fn bench_enumerate(c: &mut Criterion) {
    let service = ShortlinkService::new(LinkPopulation::generate(&config()));
    let mut group = c.benchmark_group("shortlink");
    group.sample_size(20);
    group.throughput(Throughput::Elements(LINKS));
    group.bench_function("enumerate", |b| {
        b.iter(|| black_box(enumerate_links(black_box(&service), 64).docs.len()))
    });
    group.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let codes: Vec<String> = (0..LINKS).map(index_to_code).collect();
    let mut group = c.benchmark_group("shortlink");
    group.sample_size(20);
    group.throughput(Throughput::Elements(LINKS));
    group.bench_function("resolve_accounted", |b| {
        b.iter_batched(
            || ShortlinkService::new(LinkPopulation::generate(&config())),
            |service| black_box(resolve_accounted(&service, &codes, 10_000).resolved.len()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_enumerate, bench_resolve);
criterion_main!(benches);
