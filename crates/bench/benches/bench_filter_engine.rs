//! NoCoin filter-engine throughput: pages scanned per second — the cost
//! that bounds how fast the §3.1 pipeline can cover 138 M domains.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minedig_nocoin::NoCoinEngine;
use minedig_web::page::zgrab_fetch;
use minedig_web::universe::Population;
use minedig_web::zone::Zone;
use std::hint::black_box;

fn bench_scan_pages(c: &mut Criterion) {
    let engine = NoCoinEngine::new();
    let pop = Population::generate(Zone::Org, 7, 64);
    let pages: Vec<(String, String)> = pop
        .scanned_domains()
        .filter_map(|d| zgrab_fetch(d, 7).map(|html| (d.name.clone(), html)))
        .take(256)
        .collect();
    assert!(!pages.is_empty());

    let mut group = c.benchmark_group("nocoin");
    group.throughput(Throughput::Elements(pages.len() as u64));
    group.bench_function("scan_pages", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (domain, html) in &pages {
                hits += engine.scan_page(black_box(domain), black_box(html)).len();
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_single_rule(c: &mut Criterion) {
    let rule = minedig_nocoin::Rule::parse("||coinhive.com^").unwrap();
    let url = "https://www.coinhive.com/lib/coinhive.min.js";
    c.bench_function("host_anchor_match", |b| {
        b.iter(|| black_box(rule.matches(black_box(url))))
    });
}

criterion_group!(benches, bench_scan_pages, bench_single_rule);
criterion_main!(benches);
