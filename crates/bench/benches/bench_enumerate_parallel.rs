//! Shortlink-enumeration scaling: the same ID-space walk at 1/2/4/8
//! shards.
//!
//! Results are identical to the sequential walk at every shard count
//! (enforced by `tests/parallel_enumerate.rs`), so this bench isolates
//! the windowed executor's scaling on the probe workload. The final
//! window's overshoot is part of the cost being measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minedig_primitives::par::ParallelExecutor;
use minedig_shortlink::enumerate::enumerate_links_sharded;
use minedig_shortlink::model::{LinkPopulation, ModelConfig};
use minedig_shortlink::service::ShortlinkService;
use std::hint::black_box;

const SEED: u64 = 2018;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const LINKS: u64 = 100_000;
const DEAD_RUN_LIMIT: u64 = 256;

fn bench_enumerate_shards(c: &mut Criterion) {
    let service = ShortlinkService::new(LinkPopulation::generate(&ModelConfig {
        total_links: LINKS,
        users: 5_000,
        seed: SEED,
    }));
    let mut group = c.benchmark_group("enumerate_100k");
    group.sample_size(10);
    // Probes the sequential walk performs: the live prefix + the dead run.
    group.throughput(Throughput::Elements(LINKS + DEAD_RUN_LIMIT));
    for shards in SHARD_COUNTS {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &s| {
            let executor = ParallelExecutor::new(s);
            b.iter(|| black_box(enumerate_links_sharded(&service, DEAD_RUN_LIMIT, &executor)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumerate_shards);
criterion_main!(benches);
