//! Endpoint-polling scaling: a full observation sweep (30 polls of every
//! endpoint across one template window) at 1/2/4/8 shards.
//!
//! Cluster state and stats are identical to sequential polling at every
//! shard count (enforced by `tests/parallel_poll.rs`); this bench
//! measures the fan-out of the poll/de-obfuscate/parse work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minedig_analysis::poller::Observer;
use minedig_chain::netsim::TipInfo;
use minedig_chain::tx::Transaction;
use minedig_pool::pool::{Pool, PoolConfig};
use minedig_primitives::par::ParallelExecutor;
use minedig_primitives::Hash32;
use std::hint::black_box;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn pool_with_tip() -> Pool {
    let pool = Pool::new(PoolConfig::default());
    pool.announce_tip(&TipInfo {
        height: 10,
        prev_id: Hash32::keccak(b"bench-prev"),
        prev_timestamp: 1_000,
        reward: 1_000_000,
        difficulty: 100,
        mempool: vec![Transaction::transfer(Hash32::keccak(b"bench-tx"))],
    });
    pool
}

fn bench_poll_shards(c: &mut Criterion) {
    let pool = pool_with_tip();
    let sweep: Vec<u64> = (1_000..1_150).step_by(5).collect();
    let polls = sweep.len() as u64 * pool.endpoint_count() as u64;
    let mut group = c.benchmark_group("poll_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(polls));
    for shards in SHARD_COUNTS {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &s| {
            let executor = ParallelExecutor::new(s);
            b.iter(|| {
                let mut obs = Observer::new(pool.clone(), true);
                for &t in &sweep {
                    obs.poll_all_sharded(t, &executor);
                }
                black_box(obs.stats().answered)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_poll_shards);
criterion_main!(benches);
