//! Attribution-pipeline throughput: simulated chain-days per second of
//! wall time with full observer polling (what bounds the Table 6 sweep).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minedig_analysis::scenario::{run_scenario, ScenarioConfig};
use minedig_chain::merkle::tree_hash;
use minedig_primitives::Hash32;
use std::hint::black_box;

fn bench_scenario_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("attribution");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("one_simulated_day", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = run_scenario(ScenarioConfig {
                duration_days: 1,
                seed,
                ..ScenarioConfig::default()
            });
            black_box(r.total_blocks)
        })
    });
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Hash32> = (0..13u64)
        .map(|i| Hash32::keccak(&i.to_le_bytes()))
        .collect();
    c.bench_function("tree_hash_13_leaves", |b| {
        b.iter(|| black_box(tree_hash(black_box(&leaves))))
    });
}

criterion_group!(benches, bench_scenario_day, bench_merkle);
criterion_main!(benches);
