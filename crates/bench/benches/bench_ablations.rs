//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. the 256 kB page truncation (zgrab recall vs bytes fetched),
//! 2. signature DB with vs without the similarity fallback (classification
//!    coverage of versioned builds),
//! 3. observer endpoint fan-out (1 endpoint vs all 32 → blob coverage).
//!
//! These are correctness/coverage ablations wrapped in Criterion so the
//! numbers land in the bench report next to their runtime cost.

use criterion::{criterion_group, criterion_main, Criterion};
use minedig_chain::netsim::TipInfo;
use minedig_chain::tx::Transaction;
use minedig_core::scan::build_reference_db;
use minedig_pool::pool::{Pool, PoolConfig};
use minedig_primitives::Hash32;
use minedig_wasm::corpus::generate_corpus;
use minedig_wasm::fingerprint::fingerprint;
use std::hint::black_box;

/// Ablation 2: exact-only vs exact+similarity classification coverage.
fn ablation_sigdb_fallback(c: &mut Criterion) {
    let corpus = generate_corpus(0x1660);
    let fps: Vec<_> = corpus.iter().map(|e| fingerprint(&e.module)).collect();
    let with_fallback = build_reference_db(0.7);
    let exact_only = {
        // Threshold 1.01 can never be met: similarity path disabled.
        let mut db = minedig_wasm::sigdb::SignatureDb::new().with_threshold(1.01);
        for e in generate_corpus(0x1660) {
            if e.version < 2 {
                db.insert(&fingerprint(&e.module), e.class);
            }
        }
        db
    };
    let coverage = |db: &minedig_wasm::sigdb::SignatureDb| {
        fps.iter().filter(|fp| db.classify(fp).is_some()).count() as f64 / fps.len() as f64
    };
    println!(
        "[ablation] classification coverage: exact-only {:.1}%, with similarity fallback {:.1}%",
        coverage(&exact_only) * 100.0,
        coverage(&with_fallback) * 100.0
    );
    let mut group = c.benchmark_group("ablation_sigdb");
    group.bench_function("classify_with_fallback", |b| {
        b.iter(|| {
            black_box(
                fps.iter()
                    .filter(|fp| with_fallback.classify(fp).is_some())
                    .count(),
            )
        })
    });
    group.bench_function("classify_exact_only", |b| {
        b.iter(|| {
            black_box(
                fps.iter()
                    .filter(|fp| exact_only.classify(fp).is_some())
                    .count(),
            )
        })
    });
    group.finish();
}

/// Ablation 3: polling one endpoint vs all of them.
fn ablation_endpoint_fanout(c: &mut Criterion) {
    let pool = Pool::new(PoolConfig::default());
    pool.announce_tip(&TipInfo {
        height: 1,
        prev_id: Hash32::keccak(b"tip"),
        prev_timestamp: 1_000,
        reward: 1,
        difficulty: 1,
        mempool: vec![Transaction::transfer(Hash32::keccak(b"m"))],
    });
    let distinct_blobs = |endpoints: usize| {
        let mut blobs = std::collections::HashSet::new();
        for e in 0..endpoints {
            for t in (1_000..1_130).step_by(5) {
                if let Ok(job) = pool.peek_job(e, t) {
                    blobs.insert(job.blob_hex);
                }
            }
        }
        blobs.len()
    };
    println!(
        "[ablation] distinct blobs per height: 1 endpoint → {}, 2 → {}, 32 → {}",
        distinct_blobs(1),
        distinct_blobs(2),
        distinct_blobs(32)
    );
    let mut group = c.benchmark_group("ablation_fanout");
    group.bench_function("poll_one_endpoint", |b| {
        b.iter(|| black_box(distinct_blobs(1)))
    });
    group.bench_function("poll_all_endpoints", |b| {
        b.iter(|| black_box(distinct_blobs(32)))
    });
    group.finish();
}

/// Ablation 1: zgrab truncation — how much listed markup hides past the
/// cut at various fetch budgets.
fn ablation_truncation(c: &mut Criterion) {
    use minedig_nocoin::NoCoinEngine;
    use minedig_web::universe::Population;
    use minedig_web::zone::Zone;

    let engine = NoCoinEngine::new();
    let pop = Population::generate(Zone::Org, 7, 0);
    let pages: Vec<(String, String)> = pop
        .artifacts
        .iter()
        .filter(|d| d.tls)
        .map(|d| {
            let page = minedig_web::page::synthesize_page(d, 7);
            (d.name.clone(), page.html)
        })
        .collect();
    let hits_at = |cut: usize| {
        pages
            .iter()
            .filter(|(domain, html)| {
                let mut h = html.clone();
                if h.len() > cut {
                    let mut c = cut;
                    while c > 0 && !h.is_char_boundary(c) {
                        c -= 1;
                    }
                    h.truncate(c);
                }
                !engine.page_labels(domain, &h).is_empty()
            })
            .count()
    };
    let full = hits_at(usize::MAX);
    println!(
        "[ablation] zgrab recall vs fetch budget: 64kB {}/{full}, 256kB {}/{full}, full {full}/{full}",
        hits_at(64 * 1024),
        hits_at(256 * 1024)
    );
    let mut group = c.benchmark_group("ablation_truncation");
    group.sample_size(10);
    group.bench_function("scan_at_256kB", |b| {
        b.iter(|| black_box(hits_at(256 * 1024)))
    });
    group.finish();
}

/// Ablation 4: observer poll interval vs attribution recall. The
/// guaranteed end-of-interval sample keeps recall exact down to very
/// coarse grids (DESIGN.md explains why this matches the paper's 500 ms
/// cadence); the interval mostly trades diagnostic blob coverage for
/// polling cost.
fn ablation_poll_interval(c: &mut Criterion) {
    use minedig_analysis::scenario::{run_scenario, ScenarioConfig};
    let run = |interval: u64| {
        let r = run_scenario(ScenarioConfig {
            duration_days: 1,
            poll_interval_secs: interval,
            seed: 11,
            ..ScenarioConfig::default()
        });
        (
            r.recall(),
            r.poll_stats.polls,
            r.poll_stats.max_blobs_per_prev,
        )
    };
    for interval in [15u64, 60, 300] {
        let (recall, polls, blobs) = run(interval);
        println!(
            "[ablation] poll every {interval:>3}s: recall {:.1}%, {polls} polls, max {blobs} blobs/height",
            recall * 100.0
        );
    }
    let mut group = c.benchmark_group("ablation_poll_interval");
    group.sample_size(10);
    group.bench_function("day_at_15s", |b| b.iter(|| black_box(run(15))));
    group.bench_function("day_at_300s", |b| b.iter(|| black_box(run(300))));
    group.finish();
}

criterion_group!(
    benches,
    ablation_sigdb_fallback,
    ablation_endpoint_fanout,
    ablation_truncation,
    ablation_poll_interval
);
criterion_main!(benches);
