//! Shared plumbing for the reproduction binaries.
//!
//! Every binary under `src/bin/` regenerates one of the paper's tables or
//! figures (see DESIGN.md's experiment index) and prints measured values
//! next to the paper's. Common knobs come from the environment:
//!
//! * `MINEDIG_SEED` — experiment seed (default 2018),
//! * `MINEDIG_SHARDS` — scan worker threads (default: all cores),
//! * `MINEDIG_LINK_SCALE` — divisor on the 1.7 M link population
//!   (default 10),
//! * `MINEDIG_DAYS` — override for the Fig 5 window length.

use minedig_core::exec::ScanExecutor;
use minedig_core::report::scan_stats;
use minedig_core::scan::{build_reference_db, ChromeScanOutcome};
use minedig_wasm::sigdb::SignatureDb;
use minedig_web::universe::Population;
use minedig_web::zone::Zone;

/// Reads a `u64` knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The experiment seed.
pub fn seed() -> u64 {
    env_u64("MINEDIG_SEED", 2018)
}

/// Clean-sample size scanned per zone for FP honesty.
pub const CLEAN_SAMPLE: usize = 1_000;

/// Generates the populations for the Chrome-scanned zones.
pub fn chrome_populations(seed: u64) -> Vec<Population> {
    vec![
        Population::generate(Zone::Alexa, seed, CLEAN_SAMPLE),
        Population::generate(Zone::Org, seed, CLEAN_SAMPLE),
    ]
}

/// Runs the Chrome scan on Alexa + .org with the reference DB (shared by
/// the Table 1/2/3 binaries). Sharded across `MINEDIG_SHARDS` workers
/// (default: all cores); results are bit-identical regardless of the
/// shard count.
pub fn run_chrome_scans(seed: u64) -> (SignatureDb, Vec<(Population, ChromeScanOutcome)>) {
    let db = build_reference_db(0.7);
    let executor = ScanExecutor::from_env();
    let out = chrome_populations(seed)
        .into_iter()
        .map(|p| {
            let run = executor.chrome(&p, &db, seed);
            eprint!(
                "{}",
                scan_stats(&format!("chrome scan {}", p.zone.label()), &run.stats)
            );
            (p, run.outcome)
        })
        .collect();
    (db, out)
}

/// Formats a unix timestamp as `YYYY-MM-DD` (UTC, proleptic Gregorian).
pub fn fmt_date(unix: u64) -> String {
    let days = unix / 86_400;
    let mut year = 1970u64;
    let mut remaining = days;
    loop {
        let leap =
            (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400);
        let len = if leap { 366 } else { 365 };
        if remaining < len {
            break;
        }
        remaining -= len;
        year += 1;
    }
    let leap = (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400);
    let month_lengths = [
        31,
        if leap { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ];
    let mut month = 1;
    for len in month_lengths {
        if remaining < len {
            break;
        }
        remaining -= len;
        month += 1;
    }
    format!("{year:04}-{month:02}-{:02}", remaining + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_formatting() {
        assert_eq!(fmt_date(0), "1970-01-01");
        assert_eq!(fmt_date(1_524_700_800), "2018-04-26");
        assert_eq!(fmt_date(1_525_564_800), "2018-05-06");
        assert_eq!(fmt_date(1_530_403_200), "2018-07-01");
        assert_eq!(fmt_date(951_782_400), "2000-02-29");
    }

    #[test]
    fn env_parsing() {
        assert_eq!(env_u64("MINEDIG_DOES_NOT_EXIST", 7), 7);
    }
}
