//! Figure 5: Coinhive-mined blocks over four weeks, as a day × hour
//! calendar, attributed purely from observed PoW inputs.

use minedig_analysis::calendar::BlockCalendar;
use minedig_analysis::scenario::{run_scenario, FIG5_HOLIDAYS, FIG5_OUTAGE, FIG5_START};
use minedig_bench::{env_u64, fmt_date, seed};
use minedig_core::attribute::fig5_config;
use minedig_core::report::{comparison_table, Comparison};

fn main() {
    let seed = seed();
    let days = env_u64("MINEDIG_DAYS", 28);
    println!(
        "Figure 5 — blocks mined by the Coinhive network (attribution via Merkle-root matching)\n"
    );

    let mut config = fig5_config(seed);
    config.duration_days = days;
    let result = run_scenario(config);

    let calendar = BlockCalendar::new(&result.attributed, FIG5_START, days as usize).with_outages(
        (0..days as usize)
            .filter(|d| {
                let day_start = FIG5_START + *d as u64 * 86_400;
                day_start >= FIG5_OUTAGE.0 && day_start < FIG5_OUTAGE.1
            })
            .collect(),
    );

    // The calendar heat map.
    println!("date         00 01 02 03 04 05 06 07 08 09 10 11 12 13 14 15 16 17 18 19 20 21 22 23 | total");
    for (day, row) in calendar.grid.iter().enumerate() {
        let date = fmt_date(FIG5_START + day as u64 * 86_400);
        let marks: String = row
            .iter()
            .map(|&c| match c {
                0 => " . ".to_string(),
                n => format!("{n:>2} "),
            })
            .collect();
        let total: u32 = row.iter().sum();
        let outage = if calendar.outage_days.contains(&day) {
            "  << outage"
        } else {
            ""
        };
        let holiday = if FIG5_HOLIDAYS
            .iter()
            .any(|&h| h == FIG5_START + day as u64 * 86_400)
        {
            "  << holiday"
        } else {
            ""
        };
        println!("{date}  {marks}| {total:>3}{outage}{holiday}");
    }

    let share = result.attributed.len() as f64 / result.total_blocks.max(1) as f64 * 100.0;
    let avg = result.attributed.len() as f64 / days as f64;
    let rows = vec![
        Comparison::new("median blocks/day", 8.5, calendar.median_per_day()),
        Comparison::new("average blocks/day", 9.0, avg),
        Comparison::new("block share (%)", 1.18, share),
        Comparison::new(
            "median difficulty (G)",
            55.4,
            result.network.median_difficulty as f64 / 1e9,
        ),
        Comparison::new(
            "network hashrate (MH/s)",
            462.0,
            result.network.network_hashrate / 1e6,
        ),
        Comparison::new(
            "XMR earned over window",
            1_271.0,
            result
                .attributed
                .iter()
                .map(|b| minedig_chain::emission::atomic_to_xmr(b.reward))
                .sum(),
        ),
    ];
    println!(
        "\n{}",
        comparison_table("Fig 5 / §4.2 headline numbers", &rows)
    );
    println!(
        "attribution recall vs ground truth: {:.1}% over {} pool blocks; precision: {}",
        result.recall() * 100.0,
        result.ground_truth.len(),
        if result.precise() {
            "exact (no foreign blocks matched)"
        } else {
            "IMPRECISE — BUG"
        }
    );
    println!(
        "observer: {} polls, {} answered, {} refused during the 6–7 May outage, max {} distinct blobs/height (paper: ≤128)",
        result.poll_stats.polls,
        result.poll_stats.answered,
        result.poll_stats.offline,
        result.poll_stats.max_blobs_per_prev
    );
    let spikes = calendar.spike_days(1.7);
    println!(
        "spike days (>1.7x median): {:?} (holidays at day offsets 4, 14, 26)",
        spikes
    );
}
