//! Figure 4: the required-hash distribution, with and without the
//! heavy-user bias, plus the duration axis at 20 H/s.

use minedig_bench::{env_u64, seed};
use minedig_core::report::{comparison_table, Comparison};
use minedig_core::shortlink_study::{run_study, StudyConfig};
use minedig_pow::hashrate::{human_duration, ClientClass};
use minedig_shortlink::model::{ModelConfig, PAPER_LINK_COUNT};

fn main() {
    let seed = seed();
    let scale = env_u64("MINEDIG_LINK_SCALE", 10).max(1);
    println!("Figure 4 — required hashes per short link (scale 1:{scale})\n");

    let study = run_study(
        &StudyConfig {
            model: ModelConfig {
                total_links: PAPER_LINK_COUNT / scale,
                users: 12_000,
                seed,
            },
            ..StudyConfig::default()
        },
        seed,
    );

    println!("#hashes    @20H/s      #links   CDF(all)  CDF(unbiased)");
    for exp in [8u32, 9, 10, 11, 12, 13, 14, 15, 16, 40, 63] {
        let hashes = 1u64 << exp.min(63);
        let count = study
            .hist_biased
            .bins()
            .iter()
            .find(|(floor, _)| *floor == hashes)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let duration = human_duration(ClientClass::BrowserLaptop.seconds_for(hashes));
        println!(
            "2^{exp:<6} {duration:>8} {count:>10}     {:>6.3}        {:>6.3}",
            study.cdf_biased.fraction_at_or_below(exp as f64),
            study.cdf_unbiased.fraction_at_or_below(exp as f64),
        );
    }

    let biased_at_512 =
        study.cdf_biased.fraction_at_or_below(9.0) - study.cdf_biased.fraction_at_or_below(8.9);
    let rows = vec![
        Comparison::new(
            "unbiased ≤1024 hashes (%)",
            66.7,
            study.unbiased_le_1024 * 100.0,
        ),
        Comparison::new(
            "unbiased <10k resolvable (%)",
            85.0,
            study.cdf_unbiased.fraction_at_or_below((10_000f64).log2()) * 100.0,
        ),
        // The unbiased dataset counts one link per (user, count) pair, so
        // its size — and the resolution cost — barely depends on the link
        // scale; compare against the paper's full 61.5 M figure.
        Comparison::new(
            "hashes spent resolving (M)",
            61.5,
            study.hashes_spent as f64 / 1e6,
        ),
    ];
    println!("\n{}", comparison_table("Fig 4 headline statistics", &rows));
    println!(
        "biased CDF mass at exactly 512 hashes: {:.2} (the heavy-user spike)",
        biased_at_512
    );
    println!(
        "max observed requirement: 2^{:.1} ≈ 10^19 hashes ≈ {} at 20 H/s (misconfiguration tail)",
        study.cdf_biased.max(),
        human_duration(ClientClass::BrowserLaptop.seconds_for(u64::MAX))
    );
}
