//! Smoke-sized checkpoint-overhead sweep, writing per-workload
//! wall-time plus supervision counters to `BENCH_checkpoint.json`
//! (override with `MINEDIG_BENCH_OUT`).
//!
//! Each workload runs once unsupervised (the overhead baseline), then
//! supervised at several checkpoint cadences with two simulated kills
//! injected — so the recorded times include snapshot encoding, the
//! atomic file replace, restore-on-restart, and the redone tail items.
//! Every supervised outcome is asserted bit-identical to the baseline
//! before its row is emitted: a bench that drifted from the
//! correctness contract would be measuring the wrong thing.
//!
//! The headline ratio is `secs` at cadence 64 (the CLI default) vs the
//! unsupervised row. These smoke items are microseconds each, so the
//! snapshot write dominates and the ratio looks dramatic; what the
//! sweep is really pinning down is the per-checkpoint cost (divide the
//! delta by `checkpoints`) and how it scales with snapshot size — the
//! enumeration ledger's snapshot is ~30× the scan's.

use minedig_bench::env_u64;
use minedig_core::campaign::ZgrabCampaign;
use minedig_core::scan::{zgrab_scan_with, FetchModel};
use minedig_core::shortlink_study::{run_study, run_study_supervised, StudyConfig};
use minedig_primitives::ckpt::SnapshotStore;
use minedig_primitives::supervise::{Backend, CrashPolicy, Supervisor};
use minedig_shortlink::model::ModelConfig;
use minedig_web::universe::Population;
use minedig_web::zone::Zone;
use std::hint::black_box;
use std::time::Instant;

const CADENCES: [u64; 3] = [16, 64, 256];

struct Row {
    /// Checkpoint every this many items; 0 = unsupervised baseline.
    every: u64,
    secs: f64,
    checkpoints: u64,
    snapshot_bytes: u64,
    crashes: u64,
    items_redone: u64,
}

struct Workload {
    name: &'static str,
    items: u64,
    rows: Vec<Row>,
}

fn store_for(tag: &str) -> (std::path::PathBuf, SnapshotStore) {
    let dir = std::env::temp_dir().join(format!("minedig-bench-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::open(&dir).expect("open snapshot store");
    (dir, store)
}

fn main() {
    let seed = env_u64("MINEDIG_SEED", 2018);
    let mut workloads = Vec::new();

    // §3.1 scan: per-domain fetch → NoCoin verdicts under supervision.
    let population = Population::generate(Zone::Org, seed, 20_000);
    let items = (population.artifacts.len() + population.clean_sample.len()) as u64;
    let model = FetchModel::default();
    let kills = vec![items / 3, (2 * items) / 3];

    let start = Instant::now();
    let baseline = zgrab_scan_with(&population, seed, &model);
    let mut rows = vec![Row {
        every: 0,
        secs: start.elapsed().as_secs_f64(),
        checkpoints: 0,
        snapshot_bytes: 0,
        crashes: 0,
        items_redone: 0,
    }];
    for every in CADENCES {
        let (dir, store) = store_for(&format!("zgrab-{every}"));
        let sup = Supervisor::new(CrashPolicy {
            ckpt_every_items: every,
            ..CrashPolicy::default()
        })
        .with_kills(kills.clone());
        let start = Instant::now();
        let run = sup
            .run(
                &store,
                "zgrab",
                || ZgrabCampaign::new(&population, seed, &model, Backend::Sequential),
                false,
            )
            .expect("supervised zgrab");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(run.output, baseline, "supervised scan drifted");
        black_box(&run.output);
        rows.push(Row {
            every,
            secs,
            checkpoints: run.report.checkpoints,
            snapshot_bytes: run.report.snapshot_bytes,
            crashes: u64::from(run.report.crashes),
            items_redone: run.report.items_lost,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    workloads.push(Workload {
        name: "zgrab_scan",
        items,
        rows,
    });

    // §4.1 study: the enumeration walk supervised, resolution after.
    // Smaller than the async smoke's study: the enumeration snapshot
    // carries the resolved ledger, so its size — and with it the cost
    // of a tight checkpoint cadence — grows with the walk. That growth
    // is exactly what the sweep is here to show.
    let config = StudyConfig {
        model: ModelConfig {
            total_links: 40_000,
            users: 3_000,
            seed,
        },
        ..StudyConfig::default()
    };
    let start = Instant::now();
    let reference = run_study(&config, seed);
    let probed = reference.enumeration.probed;
    let study_kills = vec![probed / 3, (2 * probed) / 3];
    let mut rows = vec![Row {
        every: 0,
        secs: start.elapsed().as_secs_f64(),
        checkpoints: 0,
        snapshot_bytes: 0,
        crashes: 0,
        items_redone: 0,
    }];
    for every in CADENCES {
        let (dir, store) = store_for(&format!("study-{every}"));
        let sup = Supervisor::new(CrashPolicy {
            ckpt_every_items: every,
            ..CrashPolicy::default()
        })
        .with_kills(study_kills.clone());
        let start = Instant::now();
        let run = run_study_supervised(
            &config,
            seed,
            &store,
            "enum",
            &sup,
            Backend::Sequential,
            false,
        )
        .expect("supervised study");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            run.result.enumeration.probed, reference.enumeration.probed,
            "supervised study drifted"
        );
        assert_eq!(
            run.result.links_per_token, reference.links_per_token,
            "supervised study drifted"
        );
        assert_eq!(
            run.result.hashes_spent, reference.hashes_spent,
            "supervised study drifted"
        );
        black_box(&run.result);
        rows.push(Row {
            every,
            secs,
            checkpoints: run.report.checkpoints,
            snapshot_bytes: run.report.snapshot_bytes,
            crashes: u64::from(run.report.crashes),
            items_redone: run.report.items_lost,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    workloads.push(Workload {
        name: "enumerate_resolve",
        items: probed,
        rows,
    });

    // Human summary…
    for w in &workloads {
        println!("{} ({} items):", w.name, w.items);
        let base = w.rows[0].secs;
        for r in &w.rows {
            if r.every == 0 {
                println!("  unsupervised: {:.3}s", r.secs);
            } else {
                println!(
                    "  every {:>3}: {:.3}s ({:+.1}% vs unsupervised), {} ckpts, \
                     {} snapshot bytes, {} crashes, {} items redone",
                    r.every,
                    r.secs,
                    (r.secs / base.max(1e-9) - 1.0) * 100.0,
                    r.checkpoints,
                    r.snapshot_bytes,
                    r.crashes,
                    r.items_redone,
                );
            }
        }
    }

    // …and the machine-readable map.
    let mut json = String::from("{\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"items\": {}, \"runs\": [",
            w.name, w.items
        ));
        for (j, r) in w.rows.iter().enumerate() {
            json.push_str(&format!(
                "{{\"every\": {}, \"secs\": {:.6}, \"checkpoints\": {}, \
                 \"snapshot_bytes\": {}, \"crashes\": {}, \"items_redone\": {}}}{}",
                r.every,
                r.secs,
                r.checkpoints,
                r.snapshot_bytes,
                r.crashes,
                r.items_redone,
                if j + 1 == w.rows.len() { "" } else { ", " }
            ));
        }
        json.push_str(&format!(
            "]}}{}\n",
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("MINEDIG_BENCH_OUT").unwrap_or_else(|_| "BENCH_checkpoint.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
