//! Bench regression gate: compares a freshly emitted `BENCH_*.json`
//! against a committed baseline and fails when any wall-clock number
//! regressed past a threshold.
//!
//! ```text
//! bench_check <baseline.json> <current.json> [threshold]
//! ```
//!
//! Every numeric field whose key ends in `secs` is compared at the same
//! JSON path; the run fails when `current > baseline * threshold`
//! (default 2.0 — generous on purpose: CI runners are noisy, and the
//! gate exists to catch order-of-magnitude rot, not jitter). Fields
//! present on only one side are reported but never fail the gate, so
//! adding a workload does not require regenerating every baseline.

use minedig_net::json::Value;

/// Default regression threshold: current may take up to 2× baseline.
const DEFAULT_THRESHOLD: f64 = 2.0;

struct Gate {
    threshold: f64,
    compared: u32,
    regressions: Vec<String>,
}

impl Gate {
    /// Walks `baseline` and `current` in lockstep, comparing every
    /// numeric `*secs` leaf reachable through matching object keys and
    /// array indices.
    fn walk(&mut self, path: &str, baseline: &Value, current: &Value) {
        match (baseline, current) {
            (Value::Obj(b), Value::Obj(c)) => {
                for (key, bv) in b {
                    let child = format!("{path}/{key}");
                    match c.get(key) {
                        Some(cv) => self.walk(&child, bv, cv),
                        None => println!("note: {child} missing from current run"),
                    }
                }
                for key in c.keys().filter(|k| !b.contains_key(*k)) {
                    println!("note: {path}/{key} has no baseline yet");
                }
            }
            (Value::Arr(b), Value::Arr(c)) => {
                if b.len() != c.len() {
                    println!(
                        "note: {path} length changed ({} baseline vs {} current)",
                        b.len(),
                        c.len()
                    );
                }
                for (i, (bv, cv)) in b.iter().zip(c.iter()).enumerate() {
                    self.walk(&format!("{path}[{i}]"), bv, cv);
                }
            }
            _ => {
                let key_is_secs = path.rsplit('/').next().unwrap_or("").ends_with("secs");
                if !key_is_secs {
                    return;
                }
                let (Some(b), Some(c)) = (baseline.as_f64(), current.as_f64()) else {
                    return;
                };
                self.compared += 1;
                // Sub-millisecond baselines are pure noise at CI
                // resolution; hold them to an absolute floor instead.
                let allowed = (b * self.threshold).max(0.005);
                if c > allowed {
                    self.regressions.push(format!(
                        "{path}: {c:.4}s vs baseline {b:.4}s (allowed {allowed:.4}s)"
                    ));
                }
            }
        }
    }
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Value::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline_path), Some(current_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_check <baseline.json> <current.json> [threshold]");
        std::process::exit(2);
    };
    let threshold = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD);

    let baseline = load(baseline_path);
    let current = load(current_path);
    let mut gate = Gate {
        threshold,
        compared: 0,
        regressions: Vec::new(),
    };
    gate.walk("", &baseline, &current);

    println!(
        "{}: {} wall-clock fields compared against {} at {threshold}x",
        current_path, gate.compared, baseline_path
    );
    if gate.compared == 0 {
        eprintln!("error: no comparable *secs fields — wrong file pair?");
        std::process::exit(2);
    }
    if !gate.regressions.is_empty() {
        eprintln!("bench regressions detected:");
        for r in &gate.regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    println!("no regressions");
}
