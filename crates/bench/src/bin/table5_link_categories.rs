//! Table 5: categories of the unbiased <10 K-hash destinations — the
//! long tail is diverse, unlike the filesharing-heavy top-10 users.

use minedig_bench::{env_u64, seed};
use minedig_core::shortlink_study::{run_study, StudyConfig};
use minedig_shortlink::model::{ModelConfig, PAPER_LINK_COUNT};

const PAPER: [(&str, u64); 10] = [
    ("Tech. & Telecomm.", 1_522),
    ("Gaming", 737),
    ("Dynamic Site", 727),
    ("Business", 578),
    ("Pornogr.", 577),
    ("Shopping", 572),
    ("Finance and Investing", 502),
    ("Ent. & Music", 313),
    ("Edu. Site", 305),
    ("Hosting", 298),
];

fn main() {
    let seed = seed();
    let scale = env_u64("MINEDIG_LINK_SCALE", 10).max(1);
    println!("Table 5 — categories of the unbiased <10k-hash dataset (scale 1:{scale})\n");

    let study = run_study(
        &StudyConfig {
            model: ModelConfig {
                total_links: PAPER_LINK_COUNT / scale,
                users: 12_000,
                seed,
            },
            resolve_budget: 10_000,
            ..StudyConfig::default()
        },
        seed,
    );

    let mut measured: Vec<(String, u64)> = study
        .tail_categories
        .iter()
        .map(|(c, n)| (c.label().to_string(), *n))
        .collect();
    measured.sort_by_key(|(_, n)| std::cmp::Reverse(*n));

    println!(
        "{:<26} {:>10} {:>14}",
        "category", "paper", "measured(1:10)"
    );
    for (i, (label, paper_count)) in PAPER.iter().enumerate() {
        let m = measured
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        println!(
            "{:<26} {:>10} {:>14}   (measured rank {})",
            label,
            paper_count,
            m,
            measured
                .iter()
                .position(|(l, _)| l == label)
                .map(|p| p + 1)
                .unwrap_or(0)
        );
        let _ = i;
    }
    println!("\nmeasured top-10:");
    for (label, n) in measured.iter().take(10) {
        println!("  {label:<26} {n}");
    }
    println!(
        "\nRuleSpace classified {:.0}% of resolved URLs (paper: ~2/3 classified, 1/3 not)",
        study.tail_classified_fraction * 100.0
    );
    println!(
        "hash cost of the resolution run: {:.1}M hashes (paper: 61.5M at full scale)",
        study.hashes_spent as f64 / 1e6
    );
}
