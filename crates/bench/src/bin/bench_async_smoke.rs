//! Smoke-sized concurrency sweep of the cooperative async backend,
//! writing concurrency→wall-time plus executor counters to
//! `BENCH_async.json` (override with `MINEDIG_BENCH_OUT`).
//!
//! Outcomes are identical across concurrency levels by construction —
//! every workload folds through the executor's reorder buffer — so only
//! the timings and the scheduling counters vary. The headline column is
//! `virtual_ms`: simulated network latency the timer wheel skips over
//! instead of sleeping through, which is why the budget can be hundreds
//! of tasks on a single thread.

use minedig_bench::env_u64;
use minedig_core::exec::{chrome_scan_async, zgrab_scan_async};
use minedig_core::scan::{build_reference_db, FetchModel};
use minedig_core::shortlink_study::{run_study_async, StudyConfig};
use minedig_primitives::aexec::{AsyncExecutor, AsyncStats};
use minedig_shortlink::model::ModelConfig;
use minedig_web::universe::Population;
use minedig_web::zone::Zone;
use std::hint::black_box;

const CONCURRENCY_LEVELS: [usize; 4] = [1, 16, 64, 256];

struct AsyncRunRow {
    concurrency: usize,
    secs: f64,
    high_water: u64,
    polls: u64,
    timer_fires: u64,
    virtual_ms: u64,
}

struct Workload {
    name: &'static str,
    items: u64,
    runs: Vec<AsyncRunRow>,
}

fn row(stats: &AsyncStats) -> AsyncRunRow {
    AsyncRunRow {
        concurrency: stats.concurrency,
        secs: stats.elapsed.as_secs_f64(),
        high_water: stats.in_flight_high_water,
        polls: stats.polls,
        timer_fires: stats.timer_fires,
        virtual_ms: stats.virtual_ms,
    }
}

fn main() {
    let seed = env_u64("MINEDIG_SEED", 2018);
    let mut workloads = Vec::new();

    // §3.1: zgrab fetch → NoCoin match as cooperative tasks.
    let population = Population::generate(Zone::Org, seed, 20_000);
    let domains = (population.artifacts.len() + population.clean_sample.len()) as u64;
    let model = FetchModel::default();
    let mut runs = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        let run = zgrab_scan_async(&population, seed, &model, &AsyncExecutor::new(concurrency));
        black_box(&run.outcome);
        runs.push(row(&run.stats));
    }
    workloads.push(Workload {
        name: "zgrab_scan",
        items: domains,
        runs,
    });

    // §3.2: chrome load → Wasm fingerprint on the same fan-out.
    let db = build_reference_db(0.7);
    let mut runs = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        let run = chrome_scan_async(
            &population,
            &db,
            seed,
            &model,
            None,
            &AsyncExecutor::new(concurrency),
        );
        black_box(&run.outcome);
        runs.push(row(&run.stats));
    }
    workloads.push(Workload {
        name: "chrome_scan",
        items: domains,
        runs,
    });

    // §4.1: the enumerate→resolve study over the async walk.
    let config = StudyConfig {
        model: ModelConfig {
            total_links: 120_000,
            users: 8_000,
            seed,
        },
        ..StudyConfig::default()
    };
    let mut items = 0u64;
    let mut runs = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        let run = run_study_async(&config, seed, &AsyncExecutor::new(concurrency));
        items = run.result.enumeration.probed;
        black_box(&run.result);
        runs.push(row(&run.enum_stats));
    }
    workloads.push(Workload {
        name: "enumerate_resolve",
        items,
        runs,
    });

    // Human summary…
    for w in &workloads {
        println!("{} ({} items):", w.name, w.items);
        let base = w.runs[0].secs;
        for r in &w.runs {
            println!(
                "  {} in flight: {:.3}s (vs sequential {:.2}x), high water {}, \
                 {} polls, {} timer fires, {}ms virtual",
                r.concurrency,
                r.secs,
                base / r.secs.max(1e-9),
                r.high_water,
                r.polls,
                r.timer_fires,
                r.virtual_ms,
            );
        }
    }

    // …and the machine-readable map.
    let mut json = String::from("{\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"items\": {}, \"runs\": [",
            w.name, w.items
        ));
        for (j, r) in w.runs.iter().enumerate() {
            json.push_str(&format!(
                "{{\"concurrency\": {}, \"secs\": {:.6}, \"high_water\": {}, \
                 \"polls\": {}, \"timer_fires\": {}, \"virtual_ms\": {}}}{}",
                r.concurrency,
                r.secs,
                r.high_water,
                r.polls,
                r.timer_fires,
                r.virtual_ms,
                if j + 1 == w.runs.len() { "" } else { ", " }
            ));
        }
        json.push_str(&format!(
            "]}}{}\n",
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("MINEDIG_BENCH_OUT").unwrap_or_else(|_| "BENCH_async.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
