//! Figure 1: the Monero PoW input, dissected on a worked example.
//!
//! Builds a real block (Coinbase + transfers), prints the hashing blob
//! field by field, verifies the Merkle linkage and mines it at a toy
//! difficulty with the real CryptoNight-style hash.

use minedig_chain::blob::HashingBlob;
use minedig_chain::block::{Block, BlockHeader};
use minedig_chain::merkle::block_tree_hash;
use minedig_chain::tx::{MinerTag, Transaction};
use minedig_pow::Variant;
use minedig_primitives::{to_hex, Hash32};

fn main() {
    println!("Figure 1 — Monero blockchain and PoW mining input\n");

    let txs: Vec<Transaction> = (0..4u64)
        .map(|i| Transaction::transfer(Hash32::keccak(&i.to_le_bytes())))
        .collect();
    let mut block = Block {
        header: BlockHeader {
            major_version: 7,
            minor_version: 7,
            timestamp: 1_526_342_400,
            prev_id: Hash32::keccak(b"previous block"),
            nonce: 0,
        },
        miner_tx: Transaction::coinbase(
            1_600_000,
            4_480_000_000_000,
            MinerTag::from_label("coinhive"),
            vec![0x01, 0x02],
        ),
        txs,
    };

    let blob = block.hashing_blob();
    println!("Block header (PoW input fields):");
    println!("  maj: {}", blob.major_version);
    println!("  min: {}", blob.minor_version);
    println!("  ts:  {} (unix)", blob.timestamp);
    println!("  prev: {}", blob.prev_id);
    println!("  nonce: {:#010x}  <- ??? (what miners search)", blob.nonce);
    println!("  merkle_root: {}", blob.merkle_root);
    println!(
        "  num_tx: {} (Coinbase + {} transfers)",
        blob.tx_count,
        block.txs.len()
    );

    let bytes = blob.to_bytes();
    println!(
        "\nSerialized hashing blob ({} bytes):\n  {}",
        bytes.len(),
        to_hex(&bytes)
    );

    // Verify the Merkle linkage the attribution methodology relies on.
    let tx_hashes: Vec<Hash32> = block.txs.iter().map(|t| t.hash()).collect();
    let recomputed = block_tree_hash(block.miner_tx.hash(), &tx_hashes);
    assert_eq!(recomputed, blob.merkle_root);
    println!("\nMerkle root recomputed from Coinbase + transactions: MATCH");
    println!("  (the Coinbase leaf names the miner — this is what makes");
    println!("   \u{a7}4.2's block-to-pool attribution sound)");

    // Round-trip the blob like the paper's observer does.
    let parsed = HashingBlob::parse(&bytes).expect("blob parses");
    assert_eq!(parsed, blob);
    println!("Blob wire-format round-trip: OK");

    // Mine at a toy difficulty with the real slow hash.
    let difficulty = 64;
    let attempts = block
        .mine(Variant::Test, difficulty, 1_000_000)
        .expect("mineable");
    println!(
        "\nMined at difficulty {difficulty} with the CryptoNight-style hash: nonce {:#010x} after {attempts} attempts",
        block.header.nonce
    );
    println!("  PoW hash: {}", block.pow_hash(Variant::Test));
    println!("  expected attempts ≈ difficulty = {difficulty}");
    println!("\nBlock id: {}", block.id());
}
