//! Smoke-sized endpoint-health sweep, writing per-configuration
//! wall-time plus breaker accounting to `BENCH_health.json` (override
//! with `MINEDIG_BENCH_OUT`).
//!
//! The sweep crosses dead-endpoint fraction × health layer on/off over
//! the §4.2 observer: a fraction of the pool's endpoints answer nothing
//! (every fetch times out, like a permanently unreachable proxy), and
//! each configuration polls the same sweep schedule. What the sweep is
//! pinning down is the **wasted-retry budget saved** by the circuit
//! breakers: health-off spends the full per-sweep retry budget on every
//! dead endpoint forever, health-on spends it only until the breaker
//! trips and then once per probe interval, quarantining the rest.
//!
//! Two contracts are asserted before any row is emitted, so a drifted
//! bench cannot measure the wrong thing: at dead fraction zero the
//! health-on run is bit-identical to the health-off run (stats, prev
//! pointer), and at every fraction both poll and health accounting
//! stay balanced.

use minedig_analysis::poller::{FetchError, JobSource, Observer, PollPolicy};
use minedig_bench::env_u64;
use minedig_chain::netsim::TipInfo;
use minedig_chain::tx::Transaction;
use minedig_pool::pool::{Pool, PoolConfig};
use minedig_pool::protocol::Job;
use minedig_primitives::health::HealthConfig;
use minedig_primitives::Hash32;
use std::hint::black_box;
use std::time::Instant;

/// Fractions of the endpoint inventory that never answer.
const DEAD_FRACTIONS: [f64; 3] = [0.0, 0.25, 0.5];
/// Poll sweeps per configuration (10 virtual time units apart).
const SWEEPS: usize = 200;

/// A [`JobSource`] whose tail endpoints are permanently dead: every
/// fetch times out, burning the observer's retry budget exactly like an
/// unreachable proxy would.
struct DeadTail {
    inner: Pool,
    dead_from: usize,
}

impl JobSource for DeadTail {
    fn endpoint_count(&self) -> usize {
        self.inner.endpoint_count()
    }

    fn fetch_job(&self, endpoint: usize, now: u64, attempt: u32) -> Result<Job, FetchError> {
        if endpoint >= self.dead_from {
            return Err(FetchError::Timeout);
        }
        self.inner.fetch_job(endpoint, now, attempt)
    }
}

fn pool_with_tip() -> Pool {
    let pool = Pool::new(PoolConfig::default());
    pool.announce_tip(&TipInfo {
        height: 10,
        prev_id: Hash32::keccak(b"bench-health-tip"),
        prev_timestamp: 1_000,
        reward: 1_000_000,
        difficulty: 100,
        mempool: vec![Transaction::transfer(Hash32::keccak(b"m"))],
    });
    pool
}

struct Run {
    dead_fraction: f64,
    health: bool,
    secs: f64,
    polls: u64,
    answered: u64,
    retries: u64,
    quarantined: u64,
    prev: Option<Hash32>,
}

fn run_config(seed: u64, dead_fraction: f64, health: bool) -> Run {
    let pool = pool_with_tip();
    let count = pool.endpoint_count();
    let dead = (count as f64 * dead_fraction).round() as usize;
    let source = DeadTail {
        inner: pool,
        dead_from: count - dead,
    };
    let mut observer = Observer::with_source(source, true, PollPolicy::default());
    if health {
        observer = observer.with_health(HealthConfig {
            seed,
            ..HealthConfig::default()
        });
    }
    let start = Instant::now();
    for t in (1_000..).step_by(10).take(SWEEPS) {
        observer.poll_all(t);
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(observer.current_blob_count());

    let stats = observer.stats();
    assert!(stats.balanced(), "poll accounting must balance: {stats:?}");
    if let Some(hs) = observer.health_stats() {
        assert!(hs.balanced(), "health accounting must balance: {hs:?}");
    }
    Run {
        dead_fraction,
        health,
        secs,
        polls: stats.polls,
        answered: stats.answered,
        retries: stats.retries,
        quarantined: stats.quarantined,
        prev: observer.current_prev(),
    }
}

fn main() {
    let seed = env_u64("MINEDIG_SEED", 2018);
    let mut runs = Vec::new();
    // (fraction, retries saved by the breaker) per dead fraction.
    let mut savings = Vec::new();

    for fraction in DEAD_FRACTIONS {
        let off = run_config(seed, fraction, false);
        let on = run_config(seed, fraction, true);
        if fraction == 0.0 {
            // The determinism contract: no faults ⇒ the health layer is
            // invisible in the observed results.
            assert_eq!(on.polls, off.polls, "fault-free polls drifted");
            assert_eq!(on.answered, off.answered, "fault-free answers drifted");
            assert_eq!(on.retries, off.retries, "fault-free retries drifted");
            assert_eq!(on.quarantined, 0, "fault-free runs must not quarantine");
            assert_eq!(on.prev, off.prev, "fault-free prev pointer drifted");
        } else {
            assert!(
                on.retries < off.retries,
                "breakers must save retry budget on dead endpoints \
                 ({} on vs {} off at fraction {fraction})",
                on.retries,
                off.retries,
            );
        }
        savings.push((fraction, off.retries - on.retries));
        runs.push(off);
        runs.push(on);
    }

    // Human summary…
    for r in &runs {
        println!(
            "dead {:>4.0}% health {:>3}: {:.3}s, {} polls, {} answered, \
             {} retries, {} quarantined",
            r.dead_fraction * 100.0,
            if r.health { "on" } else { "off" },
            r.secs,
            r.polls,
            r.answered,
            r.retries,
            r.quarantined,
        );
    }
    for (fraction, saved) in &savings {
        println!(
            "dead {:>4.0}%: breaker saved {saved} wasted retries",
            fraction * 100.0
        );
    }

    // …and the machine-readable map.
    let mut json = String::from("{\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dead_fraction\": {}, \"health\": {}, \"secs\": {:.6}, \
             \"polls\": {}, \"answered\": {}, \"retries\": {}, \"quarantined\": {}}}{}\n",
            r.dead_fraction,
            r.health,
            r.secs,
            r.polls,
            r.answered,
            r.retries,
            r.quarantined,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"retries_saved\": [\n");
    for (i, (fraction, saved)) in savings.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dead_fraction\": {fraction}, \"saved\": {saved}}}{}\n",
            if i + 1 == savings.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("MINEDIG_BENCH_OUT").unwrap_or_else(|_| "BENCH_health.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
