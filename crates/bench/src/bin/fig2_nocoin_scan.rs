//! Figure 2: NoCoin-detected miners on Alexa and .com/.net/.org, two scan
//! dates each, with the share of the top filter targets.
//!
//! The second scan date is churn-aware and incremental: the first scan
//! retains every per-domain verdict, and only the domains that churned
//! in (fresh arrivals) are re-probed — bit-identical to re-scanning the
//! whole second population.

use minedig_bench::seed;
use minedig_core::report::{bar_chart, comparison_table, Comparison};
use minedig_core::scan::{zgrab_scan_retaining, FetchModel};
use minedig_nocoin::list::ServiceLabel;
use minedig_web::churn::{second_scan_with_delta, DEFAULT_REMOVAL_RATE};
use minedig_web::universe::Population;
use minedig_web::zone::Zone;

/// Paper's first/second scan-date counts per zone.
const PAPER: [(Zone, f64, f64); 4] = [
    (Zone::Alexa, 710.0, 621.0),
    (Zone::Com, 6_676.0, 5_744.0),
    (Zone::Net, 618.0, 553.0),
    (Zone::Org, 473.0, 399.0),
];

fn main() {
    let seed = seed();
    println!("Figure 2 — NoCoin detected miners (zgrab, TLS-only, 256 kB)\n");

    let model = FetchModel::default();
    let mut rows = Vec::new();
    for (zone, paper_first, paper_second) in PAPER {
        let population = Population::generate(zone, seed, 500);
        let memo = zgrab_scan_retaining(&population, seed, &model);
        let first = memo.first.clone();
        let (population2, delta) = second_scan_with_delta(&population, seed, DEFAULT_REMOVAL_RATE);
        let (second, rescan) = memo.rescan(&population2, &delta, &model);
        eprintln!(
            "zgrab scan 2 {}: incremental — {} verdicts reused, {} fresh probes \
             ({} removed between dates)",
            zone.label(),
            rescan.reused,
            rescan.probed,
            delta.removed
        );

        rows.push(Comparison::new(
            &format!("{} scan 1", zone.label()),
            paper_first,
            first.hit_domains as f64,
        ));
        rows.push(Comparison::new(
            &format!("{} scan 2", zone.label()),
            paper_second,
            second.hit_domains as f64,
        ));

        // Per-label shares (the stacked bars of Fig 2).
        let total = first.hit_domains.max(1) as f64;
        let mut series: Vec<(String, f64)> = first
            .label_counts
            .iter()
            .map(|(l, c)| (l.label().to_string(), *c as f64 / total))
            .collect();
        series.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!(
            "{}",
            bar_chart(
                &format!(
                    "{} scan 1: {} hits on {} domains (clean-sample FPs: {}/{})",
                    zone.label(),
                    first.hit_domains,
                    population.total,
                    first.clean_sample_hits,
                    first.clean_sample_size
                ),
                &series,
                40
            )
        );
        let coinhive_like = first
            .label_counts
            .get(&ServiceLabel::Coinhive)
            .copied()
            .unwrap_or(0) as f64
            / total;
        println!(
            "   coinhive share of detected sites: {:.1}% (paper: >75% incl. variants)\n",
            coinhive_like * 100.0
        );
    }

    println!(
        "{}",
        comparison_table("Fig 2: potential mining domains per scan", &rows)
    );
    println!("note: measured counts are full-zone-scale; the miner population is\nmaterialized exactly and the clean remainder is FP-sampled (DESIGN.md).");
}
