//! Figure 2: NoCoin-detected miners on Alexa and .com/.net/.org, two scan
//! dates each, with the share of the top filter targets.

use minedig_bench::seed;
use minedig_core::exec::ScanExecutor;
use minedig_core::report::{bar_chart, comparison_table, scan_stats, Comparison};
use minedig_nocoin::list::ServiceLabel;
use minedig_web::churn::{second_scan, DEFAULT_REMOVAL_RATE};
use minedig_web::universe::Population;
use minedig_web::zone::Zone;

/// Paper's first/second scan-date counts per zone.
const PAPER: [(Zone, f64, f64); 4] = [
    (Zone::Alexa, 710.0, 621.0),
    (Zone::Com, 6_676.0, 5_744.0),
    (Zone::Net, 618.0, 553.0),
    (Zone::Org, 473.0, 399.0),
];

fn main() {
    let seed = seed();
    println!("Figure 2 — NoCoin detected miners (zgrab, TLS-only, 256 kB)\n");

    let executor = ScanExecutor::from_env();
    let mut rows = Vec::new();
    for (zone, paper_first, paper_second) in PAPER {
        let population = Population::generate(zone, seed, 500);
        let first_run = executor.zgrab(&population, seed);
        eprint!(
            "{}",
            scan_stats(&format!("zgrab scan 1 {}", zone.label()), &first_run.stats)
        );
        let first = first_run.outcome;
        let population2 = second_scan(&population, seed, DEFAULT_REMOVAL_RATE);
        let second = executor.zgrab(&population2, seed).outcome;

        rows.push(Comparison::new(
            &format!("{} scan 1", zone.label()),
            paper_first,
            first.hit_domains as f64,
        ));
        rows.push(Comparison::new(
            &format!("{} scan 2", zone.label()),
            paper_second,
            second.hit_domains as f64,
        ));

        // Per-label shares (the stacked bars of Fig 2).
        let total = first.hit_domains.max(1) as f64;
        let mut series: Vec<(String, f64)> = first
            .label_counts
            .iter()
            .map(|(l, c)| (l.label().to_string(), *c as f64 / total))
            .collect();
        series.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!(
            "{}",
            bar_chart(
                &format!(
                    "{} scan 1: {} hits on {} domains (clean-sample FPs: {}/{})",
                    zone.label(),
                    first.hit_domains,
                    population.total,
                    first.clean_sample_hits,
                    first.clean_sample_size
                ),
                &series,
                40
            )
        );
        let coinhive_like = first
            .label_counts
            .get(&ServiceLabel::Coinhive)
            .copied()
            .unwrap_or(0) as f64
            / total;
        println!(
            "   coinhive share of detected sites: {:.1}% (paper: >75% incl. variants)\n",
            coinhive_like * 100.0
        );
    }

    println!(
        "{}",
        comparison_table("Fig 2: potential mining domains per scan", &rows)
    );
    println!("note: measured counts are full-zone-scale; the miner population is\nmaterialized exactly and the clean remainder is FP-sampled (DESIGN.md).");
}
