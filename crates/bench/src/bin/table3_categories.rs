//! Table 3: top-5 RuleSpace categories of mining sites, NoCoin-detected
//! vs signature-detected, on Alexa and .org — including the "Gaming"
//! artefact caused by the cpmstar ad-network false positive.

use minedig_bench::{run_chrome_scans, seed};
use minedig_core::scan::categorize;
use minedig_web::category::RuleSpace;

fn print_top5(
    title: &str,
    refs: &[minedig_core::scan::DomainRef],
    zone: minedig_web::zone::Zone,
    rulespace: &RuleSpace,
    paper_top: &[(&str, f64)],
    paper_coverage: f64,
) {
    let (counts, covered, total) = categorize(refs, zone, rulespace);
    let mut ranked: Vec<(String, u64)> = counts
        .iter()
        .map(|(c, n)| (c.label().to_string(), *n))
        .collect();
    ranked.sort_by_key(|(_, n)| std::cmp::Reverse(*n));

    println!("-- {title} --");
    println!("   measured top-5 (share of categorized sites):");
    for (label, n) in ranked.iter().take(5) {
        println!(
            "     {label:<22} {:>5.1}%",
            *n as f64 / covered.max(1) as f64 * 100.0
        );
    }
    println!("   paper top-5:");
    for (label, pct) in paper_top {
        println!("     {label:<22} {pct:>5.1}%");
    }
    println!(
        "   categorized: measured {:.0}% vs paper {:.0}%  ({} of {} sites)\n",
        covered as f64 / total.max(1) as f64 * 100.0,
        paper_coverage,
        covered,
        total
    );
}

/// Paper reference rows: (top-5 list, top-5 list, coverage %, coverage %).
type PaperRefs = (
    &'static [(&'static str, f64)],
    &'static [(&'static str, f64)],
    f64,
    f64,
);

fn main() {
    let seed = seed();
    println!("Table 3 — top categories (Symantec RuleSpace substitute)\n");
    let (_db, scans) = run_chrome_scans(seed);
    let rulespace = RuleSpace::new(seed);

    for (population, o) in &scans {
        let zone = population.zone;
        let (paper_nocoin, paper_sig, cov_nc, cov_sig): PaperRefs = match zone {
            minedig_web::zone::Zone::Alexa => (
                &[
                    ("Gaming", 19.0),
                    ("Edu. Site", 9.0),
                    ("Shopping", 8.0),
                    ("Pornogr.", 7.0),
                    ("Tech.", 6.0),
                ],
                &[
                    ("Pornogr.", 19.0),
                    ("Tech.", 8.0),
                    ("Filesharing", 8.0),
                    ("Edu. Site", 5.0),
                    ("Ent. & Music", 5.0),
                ],
                79.0,
                74.0,
            ),
            _ => (
                &[
                    ("Gaming", 29.0),
                    ("Business", 8.0),
                    ("Edu. Site", 6.0),
                    ("Pornogr.", 5.0),
                    ("Shopping", 4.0),
                ],
                &[
                    ("Religion", 9.0),
                    ("Business", 8.0),
                    ("Edu. Site", 8.0),
                    ("Health Site", 7.0),
                    ("Tech.", 6.0),
                ],
                54.0,
                42.0,
            ),
        };
        print_top5(
            &format!("{} / NoCoin-detected sites", zone.label()),
            &o.nocoin_refs,
            zone,
            &rulespace,
            paper_nocoin,
            cov_nc,
        );
        print_top5(
            &format!("{} / signature-detected sites", zone.label()),
            &o.miner_refs,
            zone,
            &rulespace,
            paper_sig,
            cov_sig,
        );
    }
    println!("note: the NoCoin column's Gaming spike is driven by the cpmstar ad-network FP,\nreproducing the category mismatch the paper highlights.");
}
