//! Table 6: Coinhive mining statistics for May, June and July 2018 —
//! blocks/day, implied hash rate, and XMR turned over.

use minedig_analysis::estimate::monthly_row;
use minedig_analysis::scenario::run_scenario;
use minedig_bench::seed;
use minedig_core::attribute::{month_config, Month};
use minedig_core::report::{comparison_table, Comparison};

const PAPER: [(Month, f64, f64, f64, f64); 3] = [
    (Month::May, 9.0, 8.8, 5.5, 1_231.0),
    (Month::June, 10.0, 9.7, 5.5, 1_293.0),
    (Month::July, 9.0, 9.1, 5.8, 1_215.0),
];

fn main() {
    let seed = seed();
    println!("Table 6 — Coinhive monthly mining statistics (three full simulated months)\n");

    let mut rows = Vec::new();
    for (month, p_med, p_avg, p_mhs, p_xmr) in PAPER {
        let mut config = month_config(month, seed);
        // Months are long; a coarser poll grid plus the guaranteed
        // end-of-interval sample keeps attribution exact (see scenario.rs).
        config.poll_interval_secs = 60;
        let (start, end) = month.window();
        let result = run_scenario(config);
        let row = monthly_row(
            month.label(),
            &result.attributed,
            start,
            end,
            &result.network,
        );

        rows.push(Comparison::new(
            &format!("{} med [blocks/day]", month.label()),
            p_med,
            row.median,
        ));
        rows.push(Comparison::new(
            &format!("{} avg [blocks/day]", month.label()),
            p_avg,
            row.avg,
        ));
        rows.push(Comparison::new(
            &format!("{} hashrate [MH/s]", month.label()),
            p_mhs,
            row.mhs,
        ));
        rows.push(Comparison::new(
            &format!("{} currency [XMR]", month.label()),
            p_xmr,
            row.xmr,
        ));
        println!(
            "{}: attributed {}/{} ground-truth blocks (recall {:.1}%, precise: {})",
            month.label(),
            result.attributed.len(),
            result.ground_truth.len(),
            result.recall() * 100.0,
            result.precise()
        );
    }
    println!("\n{}", comparison_table("Table 6", &rows));
    println!("At 120 USD/XMR (the paper's rate), ~1250 XMR/month ≈ 150,000 USD/month,\nof which Coinhive keeps 30%.");
}
