//! Table 1: top-5 WebAssembly signature classes on Alexa and .org, and
//! the share of Wasm that is mining code.

use minedig_bench::{run_chrome_scans, seed};
use minedig_core::report::{comparison_table, Comparison};
use minedig_web::zone::Zone;

const PAPER_ALEXA: [(&str, f64); 5] = [
    ("coinhive", 311.0),
    ("skencituer", 123.0),
    ("cryptoloot", 103.0),
    ("UnknownWSS", 56.0),
    ("notgiven688", 46.0),
];
const PAPER_ORG: [(&str, f64); 5] = [
    ("coinhive", 711.0),
    ("cryptoloot", 183.0),
    ("web.stati.bid", 120.0),
    ("freecontent.date", 108.0),
    ("notgiven688", 92.0),
];

fn main() {
    let seed = seed();
    println!("Table 1 — top WebAssembly signature classes (Chrome scan)\n");
    let (_db, scans) = run_chrome_scans(seed);

    for (population, outcome) in &scans {
        let paper: &[(&str, f64)] = match population.zone {
            Zone::Alexa => &PAPER_ALEXA,
            _ => &PAPER_ORG,
        };
        let mut rows: Vec<Comparison> = paper
            .iter()
            .map(|(class, expect)| {
                let measured = outcome.class_counts.get(*class).copied().unwrap_or(0);
                Comparison::new(class, *expect, measured as f64)
            })
            .collect();
        let paper_total = if population.zone == Zone::Alexa {
            796.0
        } else {
            1_491.0
        };
        rows.push(Comparison::new(
            "total WebAssembly",
            paper_total,
            outcome.wasm_domains as f64,
        ));
        println!(
            "{}",
            comparison_table(&format!("{} Wasm classes", population.zone.label()), &rows)
        );

        let miner_share = outcome.miner_wasm_domains as f64 / outcome.wasm_domains.max(1) as f64;
        println!(
            "   miners among Wasm sites: {:.1}% (paper: ~96% Alexa / ~92% .org)",
            miner_share * 100.0
        );
        let top5: u64 = paper
            .iter()
            .map(|(c, _)| outcome.class_counts.get(*c).copied().unwrap_or(0))
            .sum();
        println!(
            "   top-5 classes cover {:.1}% of miner sites (paper: ~80%)",
            top5 as f64 / outcome.miner_wasm_domains.max(1) as f64 * 100.0
        );
        println!(
            "   unclassified Wasm dumps: {} (catalogue coverage 70%, similarity fallback active)\n",
            outcome.unclassified_wasm
        );
    }
}
