//! Smoke-sized barrier-vs-streaming comparison of the pipelined
//! workloads, writing wall-clock, stage occupancy and fingerprint-cache
//! hit rates to `BENCH_pipeline.json` (override with `MINEDIG_BENCH_OUT`).
//!
//! "Barrier" means run each stage to completion before the next starts
//! (the sequential/sharded executors); "streaming" pushes every item
//! through all stages as it arrives, so stage N+1 begins while stage N
//! is still producing. Outcomes are bit-identical by construction — the
//! pipeline's reorder buffer folds in sequence order — so only the
//! timings and the occupancy shape differ.

use minedig_bench::env_u64;
use minedig_core::exec::{chrome_scan_streaming, zgrab_scan_streaming, ScanExecutor};
use minedig_core::scan::{build_reference_db, FetchModel};
use minedig_core::shortlink_study::{run_study, run_study_streaming, StudyConfig};
use minedig_primitives::pipeline::{PipelineExecutor, PipelineStage, PipelineStats};
use minedig_shortlink::model::ModelConfig;
use minedig_wasm::cache::FingerprintCache;
use minedig_web::universe::Population;
use minedig_web::zone::Zone;
use std::hint::black_box;
use std::ops::ControlFlow;
use std::time::Instant;

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];
const CAPACITY: usize = 128;

/// Batch sizes for the channel-hop amortization sweep.
const SWEEP_BATCHES: [usize; 4] = [1, 8, 64, 256];
/// Items in the sweep — enough that per-message overhead dominates a
/// deliberately tiny kernel.
const SWEEP_ITEMS: u64 = 100_000;

/// A near-free stage: the sweep measures the channel hop, not the work.
struct HopStage;

impl PipelineStage for HopStage {
    type In = u64;
    type Out = u64;
    type Scratch = ();

    fn scratch(&self) {}

    fn process(&self, i: u64, _scratch: &mut ()) -> u64 {
        i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
    }
}

struct SweepRun {
    batch: usize,
    secs: f64,
    messages: u64,
    items_per_message: f64,
    hop_ms_saved: f64,
}

struct StreamRun {
    workers: usize,
    secs: f64,
    overlapped: bool,
    /// (occupancy, steals, backpressure waits) per processing stage.
    stages: Vec<(f64, u64, u64)>,
}

struct Workload {
    name: &'static str,
    items: u64,
    barrier_secs: f64,
    streaming: Vec<StreamRun>,
}

fn time<T, F: FnMut() -> T>(mut f: F) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn stream_run(workers: usize, secs: f64, stats: &PipelineStats) -> StreamRun {
    StreamRun {
        workers,
        secs,
        overlapped: stats.strictly_overlapped(),
        stages: stats
            .stages
            .iter()
            .map(|s| (s.occupancy(stats.elapsed), s.steals, s.backpressure_waits))
            .collect(),
    }
}

fn main() {
    let seed = env_u64("MINEDIG_SEED", 2018);
    let mut workloads = Vec::new();

    // §3.1: zgrab fetch → NoCoin match, single processing stage.
    let population = Population::generate(Zone::Com, seed, 60_000);
    let domains = (population.artifacts.len() + population.clean_sample.len()) as u64;
    let model = FetchModel::default();
    let (_, barrier_secs) =
        time(|| black_box(ScanExecutor::new(8).zgrab_with(&population, seed, &model)));
    let mut streaming = Vec::new();
    for workers in WORKER_COUNTS {
        let pipe = PipelineExecutor::new(workers, CAPACITY);
        let (run, secs) = time(|| zgrab_scan_streaming(&population, seed, &model, &pipe));
        black_box(&run.outcome);
        streaming.push(stream_run(workers, secs, &run.stats));
    }
    workloads.push(Workload {
        name: "zgrab_scan",
        items: domains,
        barrier_secs,
        streaming,
    });

    // §3.2: chrome fetch → Wasm fingerprint, two stages sharing the
    // content-addressed fingerprint memo.
    let db = build_reference_db(0.7);
    let (_, barrier_secs) =
        time(|| black_box(ScanExecutor::new(8).chrome_with(&population, &db, seed, &model)));
    let cache = FingerprintCache::new();
    let mut streaming = Vec::new();
    for workers in WORKER_COUNTS {
        let pipe = PipelineExecutor::new(workers, CAPACITY);
        let (run, secs) =
            time(|| chrome_scan_streaming(&population, &db, seed, &model, Some(&cache), &pipe));
        black_box(&run.outcome);
        streaming.push(stream_run(workers, secs, &run.stats));
    }
    workloads.push(Workload {
        name: "chrome_scan",
        items: domains,
        barrier_secs,
        streaming,
    });

    // §4.1: shortlink enumerate → resolve. Barrier = the batch study
    // (enumerate everything, then resolve); streaming overlaps
    // resolution with the ID-space walk.
    let config = StudyConfig {
        model: ModelConfig {
            total_links: 120_000,
            users: 8_000,
            seed,
        },
        ..StudyConfig::default()
    };
    let (batch, barrier_secs) = time(|| run_study(&config, seed));
    let items = batch.enumeration.probed;
    black_box(&batch);
    let mut streaming = Vec::new();
    for workers in WORKER_COUNTS {
        let pipe = PipelineExecutor::new(workers, CAPACITY);
        let (streamed, secs) = time(|| run_study_streaming(&config, seed, &pipe));
        black_box(&streamed.result);
        let mut run = stream_run(workers, secs, &streamed.enum_stats);
        // The resolver is the pipeline's second stage; the headline is
        // whether resolution began before the last probe.
        run.overlapped = streamed.overlapped();
        streaming.push(run);
    }
    workloads.push(Workload {
        name: "enumerate_resolve",
        items,
        barrier_secs,
        streaming,
    });

    // Channel-hop amortization: the same 100k-item walk through a
    // near-free stage at increasing batch sizes. Messages shrink ~1/batch
    // while the folded outcome is bit-identical (the sweep asserts it).
    let mut sweep = Vec::new();
    let mut reference = None;
    for batch in SWEEP_BATCHES {
        let pipe = PipelineExecutor::new(4, CAPACITY).with_batch(batch);
        let (run, secs) = time(|| {
            pipe.run(0..SWEEP_ITEMS, &HopStage, 0u64, |acc, v| {
                *acc = acc.wrapping_add(v);
                ControlFlow::Continue(())
            })
        });
        let outcome = *reference.get_or_insert(run.outcome);
        assert_eq!(run.outcome, outcome, "batching changed the fold");
        black_box(run.outcome);
        sweep.push(SweepRun {
            batch,
            secs,
            messages: run.stats.messages,
            items_per_message: run.stats.items_per_message(),
            hop_ms_saved: run.stats.hop_ns_saved() as f64 / 1e6,
        });
    }

    // Human summary…
    for w in &workloads {
        println!("{} ({} items):", w.name, w.items);
        println!("  barrier: {:.3}s", w.barrier_secs);
        for r in &w.streaming {
            let occ: Vec<String> = r
                .stages
                .iter()
                .map(|(o, st, bp)| format!("{:.0}% (steals {st}, waits {bp})", o * 100.0))
                .collect();
            println!(
                "  streaming x{}: {:.3}s ({}, occupancy {})",
                r.workers,
                r.secs,
                if r.overlapped {
                    "overlapped"
                } else {
                    "serialized"
                },
                occ.join(" / ")
            );
        }
    }
    println!(
        "fingerprint cache: {} hits / {} misses ({:.1}% hit rate, {} modules)",
        cache.hits(),
        cache.misses(),
        cache.hit_rate() * 100.0,
        cache.entries()
    );
    println!("batch sweep ({SWEEP_ITEMS} items, 4 workers):");
    let base_messages = sweep[0].messages;
    for r in &sweep {
        println!(
            "  batch {:>3}: {:.3}s, {:>7} messages ({:.1}x fewer), {:.1} items/msg, ~{:.1}ms hop time saved",
            r.batch,
            r.secs,
            r.messages,
            base_messages as f64 / r.messages as f64,
            r.items_per_message,
            r.hop_ms_saved,
        );
    }

    // …and the machine-readable map.
    let mut json = String::from("{\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"items\": {}, \"barrier_secs\": {:.6}, \"streaming\": [",
            w.name, w.items, w.barrier_secs
        ));
        for (j, r) in w.streaming.iter().enumerate() {
            let stages: Vec<String> = r
                .stages
                .iter()
                .map(|(o, st, bp)| {
                    format!(
                        "{{\"occupancy\": {o:.4}, \"steals\": {st}, \"backpressure_waits\": {bp}}}"
                    )
                })
                .collect();
            json.push_str(&format!(
                "{{\"workers\": {}, \"secs\": {:.6}, \"overlapped\": {}, \"stages\": [{}]}}{}",
                r.workers,
                r.secs,
                r.overlapped,
                stages.join(", "),
                if j + 1 == w.streaming.len() { "" } else { ", " }
            ));
        }
        json.push_str(&format!(
            "]}}{}\n",
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|r| {
            format!(
                "{{\"batch\": {}, \"secs\": {:.6}, \"messages\": {}, \"items_per_message\": {:.2}, \"hop_ms_saved\": {:.3}}}",
                r.batch, r.secs, r.messages, r.items_per_message, r.hop_ms_saved
            )
        })
        .collect();
    json.push_str(&format!(
        "  ],\n  \"batch_sweep\": {{\"items\": {}, \"workers\": 4, \"runs\": [{}]}},\n",
        SWEEP_ITEMS,
        sweep_json.join(", ")
    ));
    json.push_str(&format!(
        "  \"fingerprint_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"entries\": {}}}\n}}\n",
        cache.hits(),
        cache.misses(),
        cache.hit_rate(),
        cache.entries()
    ));
    let out = std::env::var("MINEDIG_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
