//! Table 4: where the top-10 link creators' links lead (1000-link samples
//! per user, resolved with the non-browser miner).

use minedig_bench::{env_u64, seed};
use minedig_core::report::{comparison_table, Comparison};
use minedig_core::shortlink_study::{run_study, StudyConfig};
use minedig_shortlink::model::{ModelConfig, PAPER_LINK_COUNT, TOP10_DESTINATIONS};

fn main() {
    let seed = seed();
    let scale = env_u64("MINEDIG_LINK_SCALE", 10).max(1);
    println!("Table 4 — top destinations of the top-10 creators (scale 1:{scale})\n");

    let study = run_study(
        &StudyConfig {
            model: ModelConfig {
                total_links: PAPER_LINK_COUNT / scale,
                users: 12_000,
                seed,
            },
            per_user_sample: 1_000,
            ..StudyConfig::default()
        },
        seed,
    );

    let mut rows = Vec::new();
    let mut paper_mass = 0.0;
    let mut measured_mass = 0.0;
    for (domain, _category, paper_freq) in TOP10_DESTINATIONS {
        let measured = study
            .top10_domains
            .iter()
            .find(|(d, _)| d == domain)
            .map(|(_, f)| *f)
            .unwrap_or(0.0);
        paper_mass += paper_freq;
        measured_mass += measured;
        rows.push(Comparison::new(
            domain,
            paper_freq * 100.0,
            measured * 100.0,
        ));
    }
    println!(
        "{}",
        comparison_table("Table 4: destination domain frequency (%)", &rows)
    );
    println!(
        "top-10 domains cover: measured {:.1}% vs paper {:.1}% of sampled links",
        measured_mass * 100.0,
        paper_mass * 100.0
    );
    println!("\nmeasured top-10 (for reference):");
    for (d, f) in study.top10_domains.iter().take(10) {
        println!("  {d:<24} {:>5.1}%", f * 100.0);
    }
    println!("\ncategories: streaming/filesharing dominate, as in the paper\n(youtu.be → Ent. & Music, zippyshare/icerbox/ul.to/share-online/oboom → Filesharing).");
}
