//! §6 discussion, quantified: is browser mining a feasible alternative to
//! advertising?
//!
//! The paper closes with: "it remains questionable whether mining is a
//! feasible ad alternative [...] the impact of the CPU intensive miner on
//! a website's performance [...] is yet to be quantified." This binary
//! runs the arithmetic for representative site tiers and compares against
//! typical 2018 display-ad revenue (~1–3 USD RPM).

use minedig_analysis::economics::{ExchangeRate, SiteEconomics};
use minedig_chain::emission::{atomic_to_xmr, base_reward, supply_mid_2018};

fn main() {
    println!("Feasibility: mining revenue vs display ads (the paper's closing question)\n");

    let network_hashrate = 462e6;
    let reward = atomic_to_xmr(base_reward(supply_mid_2018()));
    let rate = ExchangeRate::paper_writing_time();
    let pool_fee = 0.30;

    println!(
        "assumptions: network 462 MH/s, block reward {reward:.2} XMR, {} USD/XMR, 30% pool fee",
        rate.usd_per_xmr
    );
    println!("visitor hash rates: 20 H/s (paper's laptop) / 100 H/s (desktop)\n");

    let tiers = [
        ("long-tail blog", 500.0, 90.0),
        ("mid-size forum", 10_000.0, 180.0),
        ("Alexa-10k site", 250_000.0, 240.0),
        ("streaming portal", 2_000_000.0, 1_200.0),
    ];

    println!(
        "{:<18} {:>12} {:>10} {:>14} {:>14} {:>12}",
        "site tier", "visits/day", "avg stay", "mine $/day@20", "mine $/day@100", "ads $/day*"
    );
    for (name, visitors, stay) in tiers {
        let usd = |hashrate: f64| {
            SiteEconomics {
                visitors_per_day: visitors,
                avg_visit_seconds: stay,
                visitor_hashrate: hashrate,
            }
            .daily_usd_after_fee(network_hashrate, reward, rate, pool_fee)
        };
        // 2018 display RPM ≈ 2 USD per 1000 pageviews.
        let ads = visitors / 1_000.0 * 2.0;
        println!(
            "{:<18} {:>12} {:>9}s {:>14.2} {:>14.2} {:>12.2}",
            name,
            visitors,
            stay,
            usd(20.0),
            usd(100.0),
            ads
        );
    }

    println!("\n(*) at a typical 2018 display RPM of 2 USD per 1000 views.");
    println!("\nConclusion (matches the paper's skepticism): even with every visitor");
    println!("mining at desktop speed for their whole stay, mining under-earns ads");
    println!("by 1–2 orders of magnitude at 2018 difficulty and exchange rates —");
    println!("while burning the visitor's CPU and battery. The exceptions are");
    println!("long-stay streaming/filesharing sites, which is exactly where the");
    println!("paper finds miners deployed (Tables 4 and 5).");

    // Sanity: the streaming tier must beat the blog tier per the model.
    let blog = SiteEconomics {
        visitors_per_day: 500.0,
        avg_visit_seconds: 90.0,
        visitor_hashrate: 20.0,
    }
    .daily_usd_after_fee(network_hashrate, reward, rate, pool_fee);
    let streaming = SiteEconomics {
        visitors_per_day: 2_000_000.0,
        avg_visit_seconds: 1_200.0,
        visitor_hashrate: 20.0,
    }
    .daily_usd_after_fee(network_hashrate, reward, rate, pool_fee);
    assert!(streaming > blog * 1_000.0);
}
