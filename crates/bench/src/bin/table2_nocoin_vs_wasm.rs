//! Table 2: the NoCoin block list vs the Wasm signature approach, on the
//! same executed pages — the paper's headline false-negative result.

use minedig_bench::{run_chrome_scans, seed};
use minedig_core::report::{comparison_table, Comparison};
use minedig_web::zone::Zone;

struct PaperRow {
    nocoin_hits: f64,
    nocoin_with_wasm: f64,
    wasm_hits: f64,
    blocked: f64,
    missed: f64,
    missed_pct: f64,
}

fn paper_row(zone: Zone) -> PaperRow {
    match zone {
        Zone::Alexa => PaperRow {
            nocoin_hits: 993.0,
            nocoin_with_wasm: 129.0,
            wasm_hits: 737.0,
            blocked: 129.0,
            missed: 608.0,
            missed_pct: 82.0,
        },
        _ => PaperRow {
            nocoin_hits: 978.0,
            nocoin_with_wasm: 450.0,
            wasm_hits: 1_372.0,
            blocked: 450.0,
            missed: 922.0,
            missed_pct: 67.0,
        },
    }
}

fn main() {
    let seed = seed();
    println!("Table 2 — miners found by NoCoin vs Wasm signatures (Chrome data, incl. non-TLS)\n");
    let (_db, scans) = run_chrome_scans(seed);

    for (population, o) in &scans {
        let p = paper_row(population.zone);
        let missed_pct = o.missed_by_nocoin as f64 / o.miner_wasm_domains.max(1) as f64 * 100.0;
        let rows = vec![
            Comparison::new("NoCoin hits", p.nocoin_hits, o.nocoin_domains as f64),
            Comparison::new(
                "  …having miner Wasm",
                p.nocoin_with_wasm,
                o.blocked_by_nocoin as f64,
            ),
            Comparison::new("Miner Wasm hits", p.wasm_hits, o.miner_wasm_domains as f64),
            Comparison::new("  blocked by NoCoin", p.blocked, o.blocked_by_nocoin as f64),
            Comparison::new("  missed by NoCoin", p.missed, o.missed_by_nocoin as f64),
            Comparison::new("  missed %", p.missed_pct, missed_pct),
        ];
        println!("{}", comparison_table(population.zone.label(), &rows));
        let factor = o.miner_wasm_domains as f64 / o.blocked_by_nocoin.max(1) as f64;
        println!(
            "   signature approach finds {factor:.1}x the block list's miners (paper: up to 5.7x)"
        );
        println!(
            "   NoCoin hits without any miner Wasm: {} (dead refs, consent-gated, ad-network FP)",
            o.nocoin_without_wasm
        );
        println!(
            "   clean-sample miner FPs: {}/{}\n",
            o.clean_sample_miner_hits,
            minedig_bench::CLEAN_SAMPLE
        );
    }
}
