//! Smoke-sized scaling run of the three sharded workloads (zone scan,
//! shortlink enumeration, endpoint polling), writing a shards→wall-time
//! map to `BENCH_parallel.json` (override with `MINEDIG_BENCH_OUT`).
//!
//! This is the CI-friendly complement to the criterion benches: one
//! timed pass per shard count, small populations, machine-readable
//! output. Outcomes are identical across shard counts by construction,
//! so only the timings vary.

use minedig_analysis::poller::Observer;
use minedig_bench::env_u64;
use minedig_chain::netsim::TipInfo;
use minedig_chain::tx::Transaction;
use minedig_core::exec::ScanExecutor;
use minedig_pool::pool::{Pool, PoolConfig};
use minedig_primitives::par::ParallelExecutor;
use minedig_primitives::Hash32;
use minedig_shortlink::enumerate::enumerate_links_sharded;
use minedig_shortlink::model::{LinkPopulation, ModelConfig};
use minedig_shortlink::service::ShortlinkService;
use minedig_web::universe::Population;
use minedig_web::zone::Zone;
use std::hint::black_box;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    name: &'static str,
    items: u64,
    /// (shards, wall seconds), one entry per shard count.
    runs: Vec<(usize, f64)>,
}

fn time<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn main() {
    let seed = env_u64("MINEDIG_SEED", 2018);
    let mut workloads = Vec::new();

    // §3: zgrab + NoCoin over a .org-shaped population.
    let population = Population::generate(Zone::Org, seed, 20_000);
    let domains = (population.artifacts.len() + population.clean_sample.len()) as u64;
    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        let executor = ScanExecutor::new(shards);
        runs.push((
            shards,
            time(|| {
                black_box(executor.zgrab(&population, seed));
            }),
        ));
    }
    workloads.push(Workload {
        name: "zgrab_scan",
        items: domains,
        runs,
    });

    // §4.1: shortlink ID-space enumeration.
    let dead_run_limit = 256u64;
    let links = 50_000u64;
    let service = ShortlinkService::new(LinkPopulation::generate(&ModelConfig {
        total_links: links,
        users: 4_000,
        seed,
    }));
    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        let executor = ParallelExecutor::new(shards);
        runs.push((
            shards,
            time(|| {
                black_box(enumerate_links_sharded(&service, dead_run_limit, &executor));
            }),
        ));
    }
    workloads.push(Workload {
        name: "enumerate_links",
        items: links + dead_run_limit,
        runs,
    });

    // §4.2: endpoint polling across a template window.
    let pool = Pool::new(PoolConfig::default());
    pool.announce_tip(&TipInfo {
        height: 10,
        prev_id: Hash32::keccak(b"smoke-prev"),
        prev_timestamp: 1_000,
        reward: 1_000_000,
        difficulty: 100,
        mempool: vec![Transaction::transfer(Hash32::keccak(b"smoke-tx"))],
    });
    let sweep: Vec<u64> = (1_000..1_150).step_by(5).collect();
    let polls = 20 * sweep.len() as u64 * pool.endpoint_count() as u64;
    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        let executor = ParallelExecutor::new(shards);
        runs.push((
            shards,
            time(|| {
                for _ in 0..20 {
                    let mut obs = Observer::new(pool.clone(), true);
                    for &t in &sweep {
                        obs.poll_all_sharded(t, &executor);
                    }
                    black_box(obs.stats().answered);
                }
            }),
        ));
    }
    workloads.push(Workload {
        name: "poll_all",
        items: polls,
        runs,
    });

    // Human summary…
    for w in &workloads {
        println!("{} ({} items):", w.name, w.items);
        let base = w.runs[0].1;
        for &(shards, secs) in &w.runs {
            println!(
                "  {shards} shard{}: {secs:.3}s (speedup {:.2}x)",
                if shards == 1 { "" } else { "s" },
                base / secs.max(1e-9)
            );
        }
    }

    // …and the machine-readable map.
    let mut json = String::from("{\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"items\": {}, \"runs\": [",
            w.name, w.items
        ));
        for (j, &(shards, secs)) in w.runs.iter().enumerate() {
            json.push_str(&format!(
                "{{\"shards\": {shards}, \"secs\": {secs:.6}}}{}",
                if j + 1 == w.runs.len() { "" } else { ", " }
            ));
        }
        json.push_str(&format!(
            "]}}{}\n",
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("MINEDIG_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
