//! Figure 3: links per creator token — heavy concentration on a few
//! users (one user = ⅓ of links, ten users = 85 %).

use minedig_bench::{env_u64, seed};
use minedig_core::report::{comparison_table, Comparison};
use minedig_core::shortlink_study::{run_study, StudyConfig};
use minedig_primitives::stats::{gini, power_law_alpha};
use minedig_shortlink::model::{ModelConfig, PAPER_LINK_COUNT};

fn main() {
    let seed = seed();
    let scale = env_u64("MINEDIG_LINK_SCALE", 10).max(1);
    println!("Figure 3 — short links per token (scale 1:{scale})\n");

    let study = run_study(
        &StudyConfig {
            model: ModelConfig {
                total_links: PAPER_LINK_COUNT / scale,
                users: 12_000,
                seed,
            },
            ..StudyConfig::default()
        },
        seed,
    );

    // The log-log series: rank → link count (decimated for printing).
    println!("rank    links_per_token   (log-log power law)");
    let mut rank = 1usize;
    while rank <= study.links_per_token.len() {
        println!("{:>6}  {:>12}", rank, study.links_per_token[rank - 1]);
        rank = (rank as f64 * 3.0).ceil() as usize;
    }

    let total: u64 = study.links_per_token.iter().sum();
    let alpha = power_law_alpha(
        &study
            .links_per_token
            .iter()
            .map(|&c| c as f64)
            .collect::<Vec<_>>(),
        1.0,
    )
    .unwrap_or(f64::NAN);

    let rows = vec![
        Comparison::new(
            "total live links",
            PAPER_LINK_COUNT as f64 / scale as f64,
            total as f64,
        ),
        Comparison::new("top-1 user share (%)", 33.3, study.top1_share * 100.0),
        Comparison::new("users for 85% of links", 10.0, study.users_for_85pct as f64),
        Comparison::new(
            "tokens observed",
            12_000.0,
            study.links_per_token.len() as f64,
        ),
    ];
    println!("\n{}", comparison_table("Fig 3 headline statistics", &rows));
    println!(
        "Gini coefficient of links-per-token: {:.3} (extreme concentration)",
        gini(&study.links_per_token)
    );
    println!("fitted power-law exponent alpha = {alpha:.2} (heavy tail confirmed)");
    println!(
        "links probed during enumeration: {} (live space + dead run)",
        study.enumeration.probed
    );
}
