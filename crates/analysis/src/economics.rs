//! Economics: XMR→USD conversion, the pool's 70/30 split, and the
//! per-site revenue arithmetic behind the paper's closing question
//! ("whether mining is a feasible ad alternative").

use crate::attribution::AttributedBlock;
use minedig_chain::emission::atomic_to_xmr;

/// An exchange-rate anchor. Monero's 2018 rate swung hard; the paper
/// quotes 120 USD/XMR at writing time and a 400 USD peak.
#[derive(Clone, Copy, Debug)]
pub struct ExchangeRate {
    /// USD per XMR.
    pub usd_per_xmr: f64,
}

impl ExchangeRate {
    /// The paper's at-writing rate.
    pub fn paper_writing_time() -> ExchangeRate {
        ExchangeRate { usd_per_xmr: 120.0 }
    }

    /// The early-2018 peak the paper mentions.
    pub fn early_2018_peak() -> ExchangeRate {
        ExchangeRate { usd_per_xmr: 400.0 }
    }
}

/// Revenue report for a pool over a window.
#[derive(Clone, Copy, Debug)]
pub struct PoolRevenue {
    /// Total XMR mined in the window.
    pub xmr: f64,
    /// Gross USD at the given rate.
    pub usd_gross: f64,
    /// The pool's cut (Coinhive: 30 %).
    pub usd_pool_cut: f64,
    /// Paid out to site operators (70 %).
    pub usd_user_payout: f64,
}

/// Computes pool revenue from attributed blocks.
pub fn pool_revenue(blocks: &[AttributedBlock], rate: ExchangeRate, pool_fee: f64) -> PoolRevenue {
    assert!((0.0..=1.0).contains(&pool_fee));
    let xmr: f64 = blocks.iter().map(|b| atomic_to_xmr(b.reward)).sum();
    let usd_gross = xmr * rate.usd_per_xmr;
    PoolRevenue {
        xmr,
        usd_gross,
        usd_pool_cut: usd_gross * pool_fee,
        usd_user_payout: usd_gross * (1.0 - pool_fee),
    }
}

/// The per-site arithmetic the paper's conclusion gestures at: what one
/// website earns from mining visitors, before the pool's cut.
///
/// `visitors_per_day` × `avg_visit_seconds` × `hashrate` gives the site's
/// hash contribution; the network pays `block_reward × blocks_per_day /
/// network_hashrate` USD per H/s·day.
#[derive(Clone, Copy, Debug)]
pub struct SiteEconomics {
    /// Daily visitors.
    pub visitors_per_day: f64,
    /// Average visit duration, seconds.
    pub avg_visit_seconds: f64,
    /// Per-visitor hash rate (browser-grade: 20–100 H/s).
    pub visitor_hashrate: f64,
}

impl SiteEconomics {
    /// The site's average continuous hash rate.
    pub fn site_hashrate(&self) -> f64 {
        self.visitors_per_day * self.avg_visit_seconds / 86_400.0 * self.visitor_hashrate
    }

    /// Gross daily XMR for this site, given the network state.
    pub fn daily_xmr(&self, network_hashrate: f64, block_reward_xmr: f64) -> f64 {
        let blocks_per_day = 720.0;
        self.site_hashrate() / network_hashrate * blocks_per_day * block_reward_xmr
    }

    /// Net daily USD after the pool's fee.
    pub fn daily_usd_after_fee(
        &self,
        network_hashrate: f64,
        block_reward_xmr: f64,
        rate: ExchangeRate,
        pool_fee: f64,
    ) -> f64 {
        self.daily_xmr(network_hashrate, block_reward_xmr) * rate.usd_per_xmr * (1.0 - pool_fee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_primitives::Hash32;

    fn blocks(n: u64, reward_xmr: f64) -> Vec<AttributedBlock> {
        (0..n)
            .map(|i| AttributedBlock {
                height: i,
                block_id: Hash32::keccak(&i.to_le_bytes()),
                timestamp: i,
                found_at: i,
                reward: (reward_xmr * 1e12) as u64,
            })
            .collect()
    }

    #[test]
    fn monthly_revenue_matches_paper_headline() {
        // ~265 blocks/month at ~4.7 XMR ≈ 1250 XMR ≈ 150k USD at 120 $/XMR.
        let r = pool_revenue(&blocks(265, 4.7), ExchangeRate::paper_writing_time(), 0.30);
        assert!((1_200.0..1_300.0).contains(&r.xmr), "xmr {}", r.xmr);
        assert!(
            (140_000.0..160_000.0).contains(&r.usd_gross),
            "usd {}",
            r.usd_gross
        );
        assert!((r.usd_pool_cut - r.usd_gross * 0.3).abs() < 1.0);
        assert!((r.usd_pool_cut + r.usd_user_payout - r.usd_gross).abs() < 1e-6);
    }

    #[test]
    fn peak_rate_multiplies_revenue() {
        let b = blocks(100, 4.7);
        let low = pool_revenue(&b, ExchangeRate::paper_writing_time(), 0.3);
        let high = pool_revenue(&b, ExchangeRate::early_2018_peak(), 0.3);
        assert!((high.usd_gross / low.usd_gross - 400.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn typical_site_earns_almost_nothing() {
        // The feasibility question: 10k visitors/day × 3 min × 40 H/s.
        let site = SiteEconomics {
            visitors_per_day: 10_000.0,
            avg_visit_seconds: 180.0,
            visitor_hashrate: 40.0,
        };
        // Site hashrate ≈ 833 H/s of a 462 MH/s network.
        assert!((800.0..900.0).contains(&site.site_hashrate()));
        let usd = site.daily_usd_after_fee(462e6, 4.7, ExchangeRate::paper_writing_time(), 0.30);
        // A couple of dollars per day — the paper's skepticism about
        // mining as an ad alternative, quantified.
        assert!((0.2..3.0).contains(&usd), "daily usd {usd}");
    }

    #[test]
    fn zero_blocks_zero_revenue() {
        let r = pool_revenue(&[], ExchangeRate::paper_writing_time(), 0.3);
        assert_eq!(r.xmr, 0.0);
        assert_eq!(r.usd_gross, 0.0);
    }
}
