//! Hashrate, user-count and revenue estimators (§4.2's arithmetic).

use crate::attribution::AttributedBlock;
use minedig_chain::emission::atomic_to_xmr;
use minedig_chain::{BLOCKS_PER_DAY, TARGET_BLOCK_TIME};
use minedig_pow::hashrate::ClientClass;
use minedig_primitives::stats::median_u64;

/// Network-level estimates derived from observed difficulty.
#[derive(Clone, Copy, Debug)]
pub struct NetworkEstimate {
    /// Median difficulty over the observation window.
    pub median_difficulty: u64,
    /// Implied network hash rate, H/s.
    pub network_hashrate: f64,
}

/// Computes the network estimate from per-block difficulties.
pub fn network_estimate(difficulties: &mut [u64]) -> NetworkEstimate {
    let median_difficulty = median_u64(difficulties) as u64;
    NetworkEstimate {
        median_difficulty,
        network_hashrate: median_difficulty as f64 / TARGET_BLOCK_TIME as f64,
    }
}

/// Pool-level estimates from attributed blocks.
#[derive(Clone, Copy, Debug)]
pub struct PoolEstimate {
    /// Median attributed blocks per day.
    pub median_blocks_per_day: f64,
    /// Average attributed blocks per day.
    pub avg_blocks_per_day: f64,
    /// Share of all blocks (720/day at target rate).
    pub block_share: f64,
    /// Implied pool hash rate, H/s.
    pub pool_hashrate: f64,
    /// Constantly-mining-user bounds (at 100 and 20 H/s per client).
    pub users_lower: f64,
    /// Upper bound (clients at 20 H/s).
    pub users_upper: f64,
    /// XMR earned by the attributed blocks.
    pub xmr_earned: f64,
}

/// Derives pool estimates from attributed blocks over `[start, end)`.
pub fn pool_estimate(
    blocks: &[AttributedBlock],
    start: u64,
    end: u64,
    network: &NetworkEstimate,
) -> PoolEstimate {
    assert!(end > start);
    let days = ((end - start) / 86_400).max(1);
    let mut per_day = vec![0u64; days as usize];
    let mut reward_total = 0u64;
    for b in blocks {
        if b.found_at < start || b.found_at >= end {
            continue;
        }
        per_day[((b.found_at - start) / 86_400) as usize] += 1;
        reward_total += b.reward;
    }
    let total: u64 = per_day.iter().sum();
    let avg = total as f64 / days as f64;
    let median = median_u64(&mut per_day);
    let block_share = avg / BLOCKS_PER_DAY as f64;
    let pool_hashrate = block_share * network.network_hashrate;
    PoolEstimate {
        median_blocks_per_day: median,
        avg_blocks_per_day: avg,
        block_share,
        pool_hashrate,
        users_lower: pool_hashrate / ClientClass::BrowserDesktop.hashes_per_second(),
        users_upper: pool_hashrate / ClientClass::BrowserLaptop.hashes_per_second(),
        xmr_earned: atomic_to_xmr(reward_total),
    }
}

/// One row of Table 6.
#[derive(Clone, Debug)]
pub struct MonthlyRow {
    /// Month label (e.g. "May").
    pub label: String,
    /// Median blocks/day.
    pub median: f64,
    /// Average blocks/day.
    pub avg: f64,
    /// Pool hash rate in MH/s.
    pub mhs: f64,
    /// XMR earned.
    pub xmr: f64,
}

/// Builds a Table 6 row for a month window.
pub fn monthly_row(
    label: &str,
    blocks: &[AttributedBlock],
    start: u64,
    end: u64,
    network: &NetworkEstimate,
) -> MonthlyRow {
    let est = pool_estimate(blocks, start, end, network);
    MonthlyRow {
        label: label.to_string(),
        median: est.median_blocks_per_day,
        avg: est.avg_blocks_per_day,
        mhs: est.pool_hashrate / 1e6,
        xmr: est.xmr_earned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_primitives::Hash32;

    fn block_at(found_at: u64, reward: u64) -> AttributedBlock {
        AttributedBlock {
            height: 0,
            block_id: Hash32::keccak(&found_at.to_le_bytes()),
            timestamp: found_at,
            found_at,
            reward,
        }
    }

    #[test]
    fn network_estimate_matches_paper() {
        // Median difficulty 55.4 G ⇒ 462 MH/s.
        let mut d = vec![55_400_000_000u64; 100];
        let e = network_estimate(&mut d);
        assert_eq!(e.median_difficulty, 55_400_000_000);
        assert!((e.network_hashrate - 461.7e6).abs() < 1e6);
    }

    #[test]
    fn pool_estimate_core_numbers() {
        // 8.5 blocks/day for 4 weeks at ~4.8 XMR each.
        let start = 0u64;
        let end = 28 * 86_400;
        let reward = 5_000_000_000_000u64; // 5 XMR
        let mut blocks = Vec::new();
        let mut t = 5_000u64;
        while t < end {
            blocks.push(block_at(t, reward));
            t += 86_400 * 2 / 17; // 8.5/day
        }
        let net = NetworkEstimate {
            median_difficulty: 55_400_000_000,
            network_hashrate: 461.7e6,
        };
        let est = pool_estimate(&blocks, start, end, &net);
        assert!((8.0..9.0).contains(&est.avg_blocks_per_day));
        assert!(
            (0.011..0.013).contains(&est.block_share),
            "{}",
            est.block_share
        );
        assert!((5.0e6..6.3e6).contains(&est.pool_hashrate));
        // 58K–292K users, as in the paper.
        assert!(est.users_lower > 50_000.0 && est.users_lower < 70_000.0);
        assert!(est.users_upper > 250_000.0 && est.users_upper < 330_000.0);
        // 28 days × 8.5 × 5 XMR ≈ 1190.
        assert!((1_100.0..1_300.0).contains(&est.xmr_earned));
    }

    #[test]
    fn out_of_window_blocks_ignored() {
        let net = NetworkEstimate {
            median_difficulty: 1,
            network_hashrate: 1.0,
        };
        let blocks = vec![block_at(10, 5), block_at(86_500, 5), block_at(200_000, 5)];
        let est = pool_estimate(&blocks, 0, 86_400, &net);
        assert_eq!(est.xmr_earned, atomic_to_xmr(5));
        assert_eq!(est.avg_blocks_per_day, 1.0);
    }

    #[test]
    fn monthly_row_scales_to_mhs() {
        let net = NetworkEstimate {
            median_difficulty: 55_400_000_000,
            network_hashrate: 461.7e6,
        };
        let blocks: Vec<AttributedBlock> = (0..280)
            .map(|i| block_at(i * 9_257, 4_480_000_000_000))
            .collect();
        let row = monthly_row("May", &blocks, 0, 30 * 86_400, &net);
        assert_eq!(row.label, "May");
        assert!(row.mhs > 1.0, "mhs {}", row.mhs);
        assert!(row.xmr > 1_000.0);
    }

    #[test]
    fn median_differs_from_average_with_bursts() {
        let net = NetworkEstimate {
            median_difficulty: 1,
            network_hashrate: 1.0,
        };
        // 6 days of 2 blocks, one day of 30 (holiday burst).
        let mut blocks = Vec::new();
        for day in 0..6u64 {
            for i in 0..2u64 {
                blocks.push(block_at(day * 86_400 + i * 100, 1));
            }
        }
        for i in 0..30u64 {
            blocks.push(block_at(6 * 86_400 + i * 100, 1));
        }
        let est = pool_estimate(&blocks, 0, 7 * 86_400, &net);
        assert_eq!(est.median_blocks_per_day, 2.0);
        assert!(est.avg_blocks_per_day > 5.0);
    }
}
