//! Turnkey §4.2 scenario: the Monero network, the instrumented pool, the
//! observer and the attributor, wired together over virtual time.

use crate::attribution::{AttributedBlock, Attributor};
use crate::estimate::{network_estimate, NetworkEstimate};
use crate::poller::{AsyncJobSource, FaultyJobSource, Observer, PollPolicy, PollStats};
use minedig_chain::netsim::{Actor, MinedEvent, NetSim, NetSimConfig, SoloSource};
use minedig_pool::pool::{Pool, PoolConfig};
use minedig_primitives::aexec::{AsyncExecutor, AsyncStats};
use minedig_primitives::ckpt::{
    Checkpointable, CkptError, SnapReader, SnapWriter, Snapshot, SnapshotStore,
};
use minedig_primitives::fault::FaultPlan;
use minedig_primitives::health::{HealthConfig, HealthStats};
use minedig_primitives::par::ParallelExecutor;
use minedig_primitives::retry::RetryPolicy;
use minedig_primitives::supervise::{Campaign, SuperviseError, SupervisedRun, Supervisor};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A piecewise-constant rate segment.
#[derive(Clone, Copy, Debug)]
pub struct RateSegment {
    /// Segment start (unix seconds).
    pub from: u64,
    /// Rest-of-network hash rate, H/s.
    pub network: f64,
    /// Pool (Coinhive) base hash rate, H/s.
    pub pool: f64,
}

/// Scenario configuration. Defaults model the Figure 5 window.
#[derive(Clone)]
pub struct ScenarioConfig {
    /// Observation start (default 2018-04-26 00:00 UTC).
    pub start_time: u64,
    /// Observation length in days (default 28).
    pub duration_days: u64,
    /// Piecewise rates (must start at or before `start_time`).
    pub segments: Vec<RateSegment>,
    /// Day-start timestamps with elevated browsing (public holidays).
    pub holidays: Vec<u64>,
    /// Pool-rate multiplier on holiday days.
    pub holiday_boost: f64,
    /// Diurnal modulation amplitude of the pool rate (global audience ⇒
    /// small).
    pub diurnal_amplitude: f64,
    /// Pool outage windows `[from, to)` — Coinhive's 6–7 May disruption.
    pub outages: Vec<(u64, u64)>,
    /// Observer poll interval (blobs change at the pool's template
    /// refresh cadence, so polling faster than that is redundant).
    pub poll_interval_secs: u64,
    /// Shards each poll sweep fans across (1 = sequential; results are
    /// identical for any value — see `Observer::poll_all_sharded`).
    pub poll_shards: usize,
    /// When set, poll sweeps run on the cooperative async executor with
    /// this in-flight budget instead of sharding: every endpoint's fetch
    /// in flight at once on one thread, results identical to the
    /// sequential and sharded sweeps for any value — see
    /// `Observer::poll_all_async`.
    pub poll_async: Option<usize>,
    /// Optional transport fault schedule on the poll path (chaos
    /// testing). `None` polls the pool directly.
    pub poll_faults: Option<FaultPlan>,
    /// Per-endpoint retry budget within each poll sweep.
    pub poll_retry: RetryPolicy,
    /// When set, the observer runs behind the endpoint-health layer
    /// (circuit breakers, adaptive deadlines, hedged probes). Fault-free
    /// runs are bit-identical with the layer on or off; under faults it
    /// trades accounted `quarantined` polls for saved retry budget.
    pub poll_health: Option<HealthConfig>,
    /// Initial network difficulty.
    pub initial_difficulty: u64,
    /// Mean transfer transactions per block.
    pub mean_txs_per_block: f64,
    /// Pool configuration.
    pub pool: PoolConfig,
    /// RNG seed.
    pub seed: u64,
}

/// 2018-04-26 00:00 UTC — the first day of Figure 5.
pub const FIG5_START: u64 = 1_524_700_800;

/// Day-start timestamps of the paper's holiday spikes: 30 Apr (Labor Day
/// eve), 10 May (Ascension), 22 May (day after Pentecost).
pub const FIG5_HOLIDAYS: [u64; 3] = [1_525_046_400, 1_525_910_400, 1_526_947_200];

/// Coinhive's observed outage: 6–7 May 2018.
pub const FIG5_OUTAGE: (u64, u64) = (1_525_564_800, 1_525_737_600);

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            start_time: FIG5_START,
            duration_days: 28,
            segments: vec![RateSegment {
                from: 0,
                network: 456_000_000.0,
                pool: 6_000_000.0,
            }],
            holidays: FIG5_HOLIDAYS.to_vec(),
            holiday_boost: 1.8,
            diurnal_amplitude: 0.08,
            outages: vec![FIG5_OUTAGE],
            poll_interval_secs: 15,
            poll_shards: 1,
            poll_async: None,
            poll_faults: None,
            poll_retry: RetryPolicy::default(),
            poll_health: None,
            initial_difficulty: 55_400_000_000,
            mean_txs_per_block: 12.0,
            pool: PoolConfig::default(),
            seed: 0x42f,
        }
    }
}

impl ScenarioConfig {
    fn segment_at(&self, t: u64) -> RateSegment {
        let mut current = self.segments[0];
        for s in &self.segments {
            if s.from <= t {
                current = *s;
            }
        }
        current
    }

    fn in_outage(&self, t: u64) -> bool {
        self.outages.iter().any(|&(a, b)| t >= a && t < b)
    }

    fn is_holiday(&self, t: u64) -> bool {
        self.holidays.iter().any(|&d| t >= d && t < d + 86_400)
    }

    /// The pool's effective hash rate at time `t`.
    pub fn pool_rate(&self, t: u64) -> f64 {
        if self.in_outage(t) {
            return 0.0;
        }
        let base = self.segment_at(t).pool;
        let tod = (t % 86_400) as f64 / 86_400.0;
        let diurnal = 1.0 + self.diurnal_amplitude * (std::f64::consts::TAU * tod).sin();
        let holiday = if self.is_holiday(t) {
            self.holiday_boost
        } else {
            1.0
        };
        base * diurnal * holiday
    }
}

/// Scenario output.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Blocks the methodology attributed to the pool.
    pub attributed: Vec<AttributedBlock>,
    /// Ground truth: every pool-won block event from the simulator.
    pub ground_truth: Vec<MinedEvent>,
    /// Total blocks mined by anyone in the window.
    pub total_blocks: u64,
    /// Network estimate from observed difficulties.
    pub network: NetworkEstimate,
    /// Observer poll statistics.
    pub poll_stats: PollStats,
    /// Aggregate async-executor statistics across all poll sweeps, when
    /// `poll_async` was set.
    pub poll_async_stats: Option<AsyncStats>,
    /// Endpoint-health counters (breaker trips, quarantines, hedges),
    /// when `poll_health` was set.
    pub poll_health_stats: Option<HealthStats>,
    /// Scenario window `[start, end)`.
    pub window: (u64, u64),
}

impl ScenarioResult {
    /// Attribution recall against ground truth.
    pub fn recall(&self) -> f64 {
        if self.ground_truth.is_empty() {
            return 1.0;
        }
        self.attributed.len() as f64 / self.ground_truth.len() as f64
    }

    /// True iff every attributed block is a ground-truth pool block
    /// (the methodology is precise by construction — the Coinbase leaf —
    /// so anything else is a bug).
    pub fn precise(&self) -> bool {
        let truth: std::collections::HashSet<_> =
            self.ground_truth.iter().map(|e| e.block_id).collect();
        self.attributed.iter().all(|b| truth.contains(&b.block_id))
    }
}

/// Runs the full scenario.
pub fn run_scenario(config: ScenarioConfig) -> ScenarioResult {
    let pool = Pool::new(config.pool.clone());
    match config.poll_faults.clone() {
        None => {
            let policy = PollPolicy {
                retry: config.poll_retry.clone(),
                jitter_seed: config.seed,
            };
            let mut observer = Observer::with_source(pool.clone(), true, policy);
            if let Some(health) = config.poll_health.clone() {
                observer = observer.with_health(health);
            }
            run_scenario_with(config, pool, observer)
        }
        Some(plan) => {
            let policy = PollPolicy {
                retry: config.poll_retry.clone(),
                jitter_seed: plan.seed(),
            };
            let source = FaultyJobSource::new(pool.clone(), plan);
            let mut observer = Observer::with_source(source, true, policy);
            if let Some(health) = config.poll_health.clone() {
                observer = observer.with_health(health);
            }
            run_scenario_with(config, pool, observer)
        }
    }
}

/// The scenario body, generic over the observer's job source so the
/// fault-injected and direct paths share every line of driver logic.
/// The source must be async-capable so `poll_async` can route sweeps
/// through the cooperative executor.
fn run_scenario_with<S: AsyncJobSource + Send + 'static>(
    config: ScenarioConfig,
    pool: Pool,
    observer: Observer<S>,
) -> ScenarioResult {
    let mut campaign = ScenarioCampaign::new(config, pool, observer);
    let heartbeat = AtomicU64::new(0);
    while !campaign.is_done() {
        campaign.run_items(u64::MAX, &heartbeat);
    }
    campaign.finish()
}

/// The §4.2 scenario as a killable, resumable [`Campaign`]: one item =
/// one accepted block event (one [`NetSim::step`], including its poll
/// sweeps over the inter-block interval).
///
/// The simulator itself is not serialized. Its whole trajectory — block
/// times, winners, templates, difficulties — is a pure function of the
/// config and seed, and the observation hook only *reads* the pool, so
/// the snapshot carries just the step cursor plus the state that folds
/// across steps: the attributor's verdicts, the observer's cross-sweep
/// state (via [`Observer::write_state`]) and the aggregated async
/// executor counters. `restore` rebuilds the simulator by replaying the
/// first `steps` events with polling suppressed (outage toggles still
/// applied), recomputing `difficulties`/`ground_truth`/`total_blocks`
/// along the way, then overlays the snapshot state — so a
/// killed-and-resumed run reproduces the uninterrupted scenario bit for
/// bit, for any sweep backend and fault schedule.
pub struct ScenarioCampaign<S: AsyncJobSource + Send + 'static> {
    config: Arc<ScenarioConfig>,
    observer: Arc<Mutex<Observer<S>>>,
    async_stats: Arc<Mutex<AsyncStats>>,
    /// When set, the interval hook skips poll sweeps (restore replay).
    replaying: Arc<AtomicBool>,
    sim: NetSim,
    end_time: u64,
    attributor: Attributor,
    difficulties: Vec<u64>,
    ground_truth: Vec<MinedEvent>,
    total_blocks: u64,
    /// Count of `sim.step()` calls performed — the progress key.
    steps: u64,
    done: bool,
}

impl<S: AsyncJobSource + Send + 'static> ScenarioCampaign<S> {
    /// Builds the simulator, actors and observation hook for one
    /// scenario run over a freshly-initialized observer.
    pub fn new(config: ScenarioConfig, pool: Pool, observer: Observer<S>) -> ScenarioCampaign<S> {
        let observer = Arc::new(Mutex::new(observer));
        let end_time = config.start_time + config.duration_days * 86_400;
        let async_stats: Arc<Mutex<AsyncStats>> = Arc::new(Mutex::new(AsyncStats::default()));
        let replaying = Arc::new(AtomicBool::new(false));

        let config = Arc::new(config);
        let pool_actor = Actor {
            name: "coinhive".to_string(),
            profile: {
                let config = config.clone();
                Box::new(move |t| config.pool_rate(t))
            },
            source: Box::new(pool.template_source()),
        };
        let network_actor = Actor {
            name: "rest-of-network".to_string(),
            profile: {
                let config = config.clone();
                Box::new(move |t| config.segment_at(t).network)
            },
            source: Box::new(SoloSource::new("rest-of-network")),
        };

        let mut sim = NetSim::new(
            NetSimConfig {
                start_time: config.start_time,
                initial_difficulty: config.initial_difficulty,
                mean_txs_per_block: config.mean_txs_per_block,
                seed: config.seed,
                ..NetSimConfig::default()
            },
            vec![network_actor, pool_actor],
        );

        // The observation hook: poll all endpoints across each
        // inter-block interval, toggling pool availability per the
        // outage schedule. During a restore replay the sweeps are
        // skipped (the observer's state comes from the snapshot) but
        // the outage toggles still run, so the pool traverses the same
        // state sequence as the original run.
        {
            let observer = observer.clone();
            let pool = pool.clone();
            let config = config.clone();
            let replaying = replaying.clone();
            let interval = config.poll_interval_secs.max(1);
            let executor = ParallelExecutor::new(config.poll_shards);
            let async_exec = config.poll_async.map(AsyncExecutor::new);
            let async_stats = async_stats.clone();
            sim.set_interval_hook(Box::new(move |from, to| {
                let replay = replaying.load(Ordering::Relaxed);
                let mut obs = observer.lock();
                // Sharded and async sweeps are bit-identical; the async
                // path additionally aggregates its executor stats for
                // the report.
                let sweep = |obs: &mut Observer<S>, t: u64| match &async_exec {
                    Some(aexec) => {
                        let s = obs.poll_all_async(t, aexec);
                        async_stats.lock().absorb(&s);
                    }
                    None => {
                        obs.poll_all_sharded(t, &executor);
                    }
                };
                let mut t = from - from % interval + interval;
                let mut polled_end = false;
                while t <= to {
                    pool.set_online(!config.in_outage(t));
                    if !replay {
                        sweep(&mut obs, t);
                    }
                    polled_end = t == to;
                    t += interval;
                }
                // Always sample the interval end: the paper's 500 ms
                // cadence is far finer than the pool's template refresh,
                // so the version active at block-discovery time was
                // always observed.
                pool.set_online(!config.in_outage(to));
                if !polled_end && !config.in_outage(to) && !replay {
                    sweep(&mut obs, to);
                }
            }));
        }

        ScenarioCampaign {
            config,
            observer,
            async_stats,
            replaying,
            sim,
            end_time,
            attributor: Attributor::new(),
            difficulties: Vec::new(),
            ground_truth: Vec::new(),
            total_blocks: 0,
            steps: 0,
            done: false,
        }
    }

    /// Folds one in-window block event into the campaign state.
    fn apply_event(&mut self, ev: MinedEvent) {
        self.total_blocks += 1;
        self.difficulties.push(ev.difficulty);
        let block = self
            .sim
            .chain()
            .block_at(ev.height)
            .expect("event height exists")
            .clone();
        let cluster = self.observer.lock().take_cluster(&block.header.prev_id);
        self.attributor.judge(&block, ev.found_at, cluster.as_ref());
        if ev.actor_name == "coinhive" {
            self.ground_truth.push(ev);
        }
    }
}

impl<S: AsyncJobSource + Send + 'static> Checkpointable for ScenarioCampaign<S> {
    fn progress_key(&self) -> u64 {
        self.steps
    }

    fn snapshot(&self) -> Snapshot {
        let mut w = SnapWriter::new();
        w.u64(self.steps);
        w.bool(self.done);
        let a = &self.attributor;
        w.len(a.attributed.len());
        for b in &a.attributed {
            w.u64(b.height);
            w.hash(&b.block_id);
            w.u64(b.timestamp);
            w.u64(b.found_at);
            w.u64(b.reward);
        }
        w.u64(a.unmatched);
        w.u64(a.gaps);
        {
            let s = self.async_stats.lock();
            w.len(s.concurrency);
            w.u64(s.tasks);
            w.u64(s.completed);
            w.u64(s.in_flight_high_water);
            w.u64(s.polls);
            w.u64(s.wakeups);
            w.u64(s.timer_fires);
            w.u64(s.io_repolls);
            w.u64(s.virtual_ms);
            w.u64(s.elapsed.as_nanos() as u64);
        }
        self.observer.lock().write_state(&mut w);
        Snapshot::new(self.steps, w.finish())
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), CkptError> {
        let mut r = SnapReader::new(&snap.payload);
        let steps = r.u64()?;
        let done = r.bool()?;
        let n = r.len()?;
        let mut attributed = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            attributed.push(AttributedBlock {
                height: r.u64()?,
                block_id: r.hash()?,
                timestamp: r.u64()?,
                found_at: r.u64()?,
                reward: r.u64()?,
            });
        }
        let unmatched = r.u64()?;
        let gaps = r.u64()?;
        let async_stats = AsyncStats {
            concurrency: r.len()?,
            tasks: r.u64()?,
            completed: r.u64()?,
            in_flight_high_water: r.u64()?,
            polls: r.u64()?,
            wakeups: r.u64()?,
            timer_fires: r.u64()?,
            io_repolls: r.u64()?,
            virtual_ms: r.u64()?,
            elapsed: Duration::from_nanos(r.u64()?),
        };
        self.observer.lock().read_state(&mut r)?;
        r.expect_end()?;

        // Fast-forward: re-run the simulator through the first `steps`
        // events with polling suppressed, re-deriving the event-fold
        // state the snapshot deliberately omits.
        self.replaying.store(true, Ordering::Relaxed);
        for _ in 0..steps {
            if self.sim.now() >= self.end_time {
                self.replaying.store(false, Ordering::Relaxed);
                return Err(CkptError::Corrupt("replay ran past the window"));
            }
            let Some(ev) = self.sim.step() else {
                self.replaying.store(false, Ordering::Relaxed);
                return Err(CkptError::Corrupt("simulator exhausted during replay"));
            };
            if ev.found_at >= self.end_time {
                // The breaking event: observed but never folded.
                continue;
            }
            self.total_blocks += 1;
            self.difficulties.push(ev.difficulty);
            if ev.actor_name == "coinhive" {
                self.ground_truth.push(ev);
            }
        }
        self.replaying.store(false, Ordering::Relaxed);

        self.steps = steps;
        self.done = done;
        self.attributor = Attributor {
            attributed,
            unmatched,
            gaps,
        };
        *self.async_stats.lock() = async_stats;
        Ok(())
    }
}

impl<S: AsyncJobSource + Send + 'static> Campaign for ScenarioCampaign<S> {
    type Output = ScenarioResult;

    fn is_done(&self) -> bool {
        self.done
    }

    fn run_items(&mut self, budget: u64, heartbeat: &AtomicU64) {
        for _ in 0..budget {
            if self.done {
                return;
            }
            if self.sim.now() >= self.end_time {
                self.done = true;
                return;
            }
            let Some(ev) = self.sim.step() else {
                self.done = true;
                return;
            };
            self.steps += 1;
            heartbeat.fetch_add(1, Ordering::Relaxed);
            if ev.found_at >= self.end_time {
                // The step ran (and polled) but its block falls outside
                // the window — the uninterrupted loop's break point.
                self.done = true;
                return;
            }
            self.apply_event(ev);
        }
    }

    fn virtual_now_ms(&self) -> u64 {
        self.sim.now().saturating_mul(1_000)
    }

    fn finish(mut self) -> ScenarioResult {
        let network = network_estimate(&mut self.difficulties);
        let observer = self.observer.lock();
        let poll_stats = observer.stats().clone();
        let poll_health_stats = observer.health_stats();
        drop(observer);
        ScenarioResult {
            attributed: self.attributor.attributed,
            ground_truth: self.ground_truth,
            total_blocks: self.total_blocks,
            network,
            poll_stats,
            poll_health_stats,
            poll_async_stats: self
                .config
                .poll_async
                .map(|_| self.async_stats.lock().clone()),
            window: (self.config.start_time, self.end_time),
        }
    }
}

/// Runs the full scenario under a [`Supervisor`]: checkpointed into
/// `store` every `CrashPolicy` interval, killable at any block event,
/// resumable with `resume` — and bit-identical to [`run_scenario`] on
/// the same config (the unsupervised path drives the very same
/// [`ScenarioCampaign`]).
pub fn run_scenario_supervised(
    config: &ScenarioConfig,
    store: &SnapshotStore,
    name: &str,
    supervisor: &Supervisor,
    resume: bool,
) -> Result<SupervisedRun<ScenarioResult>, SuperviseError> {
    match config.poll_faults.clone() {
        None => supervisor.run(
            store,
            name,
            || {
                let pool = Pool::new(config.pool.clone());
                let policy = PollPolicy {
                    retry: config.poll_retry.clone(),
                    jitter_seed: config.seed,
                };
                let mut observer = Observer::with_source(pool.clone(), true, policy);
                if let Some(health) = config.poll_health.clone() {
                    observer = observer.with_health(health);
                }
                ScenarioCampaign::new(config.clone(), pool, observer)
            },
            resume,
        ),
        Some(plan) => supervisor.run(
            store,
            name,
            || {
                let pool = Pool::new(config.pool.clone());
                let policy = PollPolicy {
                    retry: config.poll_retry.clone(),
                    jitter_seed: plan.seed(),
                };
                let source = FaultyJobSource::new(pool.clone(), plan.clone());
                let mut observer = Observer::with_source(source, true, policy);
                if let Some(health) = config.poll_health.clone() {
                    observer = observer.with_health(health);
                }
                ScenarioCampaign::new(config.clone(), pool, observer)
            },
            resume,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_scenario(days: u64, seed: u64) -> ScenarioResult {
        run_scenario(ScenarioConfig {
            duration_days: days,
            seed,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn attribution_is_precise_and_high_recall() {
        let r = short_scenario(4, 1);
        assert!(r.precise(), "attribution must never hit foreign blocks");
        assert!(
            r.recall() > 0.85,
            "recall {} over {} truth blocks",
            r.recall(),
            r.ground_truth.len()
        );
        assert!(!r.attributed.is_empty());
    }

    #[test]
    fn block_share_is_near_1_18_percent() {
        let r = short_scenario(6, 2);
        let share = r.ground_truth.len() as f64 / r.total_blocks as f64;
        assert!((0.006..0.022).contains(&share), "share {share}");
    }

    #[test]
    fn network_difficulty_holds_at_55g() {
        let r = short_scenario(3, 3);
        let ratio = r.network.median_difficulty as f64 / 55_400_000_000.0;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn outage_suppresses_pool_blocks() {
        let mut config = ScenarioConfig {
            duration_days: 12,
            seed: 4,
            ..ScenarioConfig::default()
        };
        // Make the pool large so the test has statistics, then check the
        // outage days are empty.
        config.segments[0].pool = 40_000_000.0;
        let r = run_scenario(config);
        let (o_start, o_end) = FIG5_OUTAGE;
        let during = r
            .ground_truth
            .iter()
            .filter(|e| e.found_at >= o_start && e.found_at < o_end)
            .count();
        assert_eq!(during, 0, "no pool blocks during the outage");
        let outside = r.ground_truth.len() - during;
        assert!(outside > 50, "outside {outside}");
        // Observer saw the outage as refused polls.
        assert!(r.poll_stats.offline > 0);
    }

    #[test]
    fn holiday_rate_is_boosted() {
        let config = ScenarioConfig::default();
        let holiday_noon = FIG5_HOLIDAYS[0] + 43_200;
        let normal_noon = FIG5_HOLIDAYS[0] + 86_400 + 43_200;
        assert!(config.pool_rate(holiday_noon) > config.pool_rate(normal_noon) * 1.5);
    }

    #[test]
    fn pool_rate_zero_in_outage() {
        let config = ScenarioConfig::default();
        assert_eq!(config.pool_rate(FIG5_OUTAGE.0 + 100), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = short_scenario(2, 9);
        let b = short_scenario(2, 9);
        assert_eq!(a.attributed.len(), b.attributed.len());
        assert_eq!(a.total_blocks, b.total_blocks);
    }

    #[test]
    fn chaos_polling_with_clearing_faults_matches_clean() {
        let clean = short_scenario(2, 9);
        let plan = FaultPlan::transient_only(77, 0.4);
        let faulty = run_scenario(ScenarioConfig {
            duration_days: 2,
            seed: 9,
            poll_retry: RetryPolicy::attempts(plan.attempts_to_clear()),
            poll_faults: Some(plan),
            ..ScenarioConfig::default()
        });
        assert!(faulty.poll_stats.retries > 0, "p=0.4 must force retries");
        assert_eq!(faulty.attributed, clean.attributed);
        assert_eq!(faulty.total_blocks, clean.total_blocks);
        assert_eq!(faulty.poll_stats.answered, clean.poll_stats.answered);
        assert_eq!(faulty.poll_stats.endpoints_down, 0);
        assert!(faulty.poll_stats.balanced());
    }

    #[test]
    fn async_polling_does_not_change_the_scenario() {
        let seq = short_scenario(2, 9);
        let asy = run_scenario(ScenarioConfig {
            duration_days: 2,
            seed: 9,
            poll_async: Some(64),
            ..ScenarioConfig::default()
        });
        assert_eq!(asy.attributed, seq.attributed);
        assert_eq!(asy.total_blocks, seq.total_blocks);
        assert_eq!(asy.poll_stats.polls, seq.poll_stats.polls);
        assert_eq!(asy.poll_stats.answered, seq.poll_stats.answered);
        assert_eq!(asy.poll_stats.offline, seq.poll_stats.offline);
        assert_eq!(
            asy.poll_stats.max_blobs_per_prev,
            seq.poll_stats.max_blobs_per_prev
        );
        let stats = asy.poll_async_stats.expect("async stats reported");
        // Every sweep held all 32 endpoint fetches in flight at once.
        assert_eq!(stats.in_flight_high_water, 32);
        assert_eq!(stats.tasks, seq.poll_stats.polls);
        assert!(seq.poll_async_stats.is_none());
    }

    #[test]
    fn async_polling_matches_under_fault_schedules() {
        let plan = FaultPlan::transient_only(77, 0.4);
        let base = ScenarioConfig {
            duration_days: 2,
            seed: 9,
            poll_retry: RetryPolicy::attempts(plan.attempts_to_clear()),
            poll_faults: Some(plan.clone()),
            ..ScenarioConfig::default()
        };
        let seq = run_scenario(ScenarioConfig {
            poll_faults: Some(plan.clone()),
            ..base
        });
        let asy = run_scenario(ScenarioConfig {
            duration_days: 2,
            seed: 9,
            poll_retry: RetryPolicy::attempts(plan.attempts_to_clear()),
            poll_faults: Some(plan),
            poll_async: Some(256),
            ..ScenarioConfig::default()
        });
        assert!(asy.poll_stats.retries > 0, "p=0.4 must force retries");
        assert_eq!(asy.attributed, seq.attributed);
        assert_eq!(asy.total_blocks, seq.total_blocks);
        assert_eq!(asy.poll_stats.answered, seq.poll_stats.answered);
        assert_eq!(asy.poll_stats.retries, seq.poll_stats.retries);
        assert_eq!(asy.poll_stats.reconnects, seq.poll_stats.reconnects);
        assert!(asy.poll_stats.balanced());
    }

    fn assert_results_eq(a: &ScenarioResult, b: &ScenarioResult, ctx: &str) {
        assert_eq!(a.attributed, b.attributed, "{ctx}");
        assert_eq!(a.total_blocks, b.total_blocks, "{ctx}");
        assert_eq!(
            a.ground_truth
                .iter()
                .map(|e| e.block_id)
                .collect::<Vec<_>>(),
            b.ground_truth
                .iter()
                .map(|e| e.block_id)
                .collect::<Vec<_>>(),
            "{ctx}"
        );
        assert_eq!(a.poll_stats, b.poll_stats, "{ctx}");
        assert_eq!(
            a.network.median_difficulty, b.network.median_difficulty,
            "{ctx}"
        );
        assert_eq!(a.window, b.window, "{ctx}");
    }

    fn sup_store(tag: &str) -> (std::path::PathBuf, SnapshotStore) {
        let dir =
            std::env::temp_dir().join(format!("minedig-scenario-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (dir.clone(), SnapshotStore::open(dir).unwrap())
    }

    #[test]
    fn supervised_scenario_with_kills_matches_uninterrupted() {
        use minedig_primitives::supervise::CrashPolicy;
        let reference = short_scenario(2, 9);
        let config = ScenarioConfig {
            duration_days: 2,
            seed: 9,
            ..ScenarioConfig::default()
        };
        let (dir, store) = sup_store("kills");
        let sup = Supervisor::new(CrashPolicy {
            ckpt_every_items: 4,
            ..CrashPolicy::default()
        })
        .with_kills(vec![3, 11]);
        let run = run_scenario_supervised(&config, &store, "attr", &sup, false).unwrap();
        assert_results_eq(&run.output, &reference, "killed at 3 and 11");
        assert_eq!(run.report.crashes, 2);
        assert!(run.report.items_lost > 0, "kills must discard work");
        assert!(run.report.balanced(), "{:?}", run.report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervised_scenario_resumes_across_processes() {
        use minedig_primitives::supervise::{CrashPolicy, SuperviseError};
        let reference = short_scenario(2, 5);
        let config = ScenarioConfig {
            duration_days: 2,
            seed: 5,
            ..ScenarioConfig::default()
        };
        let (dir, store) = sup_store("resume");
        // First process dies at every step after the first checkpoint…
        let doomed = Supervisor::new(CrashPolicy {
            ckpt_every_items: 4,
            max_restarts: 1,
            ..CrashPolicy::default()
        })
        .with_kills((5..10_000).collect());
        let err = run_scenario_supervised(&config, &store, "attr", &doomed, false).unwrap_err();
        assert!(matches!(err, SuperviseError::RestartsExhausted(_)));
        // …and a fresh supervisor resumes from its surviving snapshot.
        let sup = Supervisor::new(CrashPolicy::default());
        let run = run_scenario_supervised(&config, &store, "attr", &sup, true).unwrap();
        assert!(run.report.start_progress > 0, "must resume mid-way");
        assert_results_eq(&run.output, &reference, "resumed run");
        assert!(run.report.balanced(), "{:?}", run.report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervised_scenario_matches_under_poll_faults_and_async_sweeps() {
        use minedig_primitives::supervise::CrashPolicy;
        let plan = FaultPlan::transient_only(77, 0.4);
        let config = ScenarioConfig {
            duration_days: 2,
            seed: 9,
            poll_retry: RetryPolicy::attempts(plan.attempts_to_clear()),
            poll_faults: Some(plan),
            poll_async: Some(64),
            ..ScenarioConfig::default()
        };
        let reference = run_scenario(config.clone());
        assert!(reference.poll_stats.retries > 0, "p=0.4 must force retries");
        let (dir, store) = sup_store("faulty");
        let sup = Supervisor::new(CrashPolicy {
            ckpt_every_items: 4,
            ..CrashPolicy::default()
        })
        .with_kills(vec![2, 9]);
        let run = run_scenario_supervised(&config, &store, "attr", &sup, false).unwrap();
        assert_results_eq(&run.output, &reference, "faulty async supervised");
        let (sa, sb) = (
            run.output.poll_async_stats.as_ref().expect("async stats"),
            reference.poll_async_stats.as_ref().expect("async stats"),
        );
        assert_eq!(sa.tasks, sb.tasks);
        assert_eq!(sa.in_flight_high_water, sb.in_flight_high_water);
        assert!(run.report.balanced(), "{:?}", run.report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_layer_does_not_change_the_scenario() {
        let off = short_scenario(2, 9);
        let on = run_scenario(ScenarioConfig {
            duration_days: 2,
            seed: 9,
            poll_health: Some(HealthConfig::default()),
            ..ScenarioConfig::default()
        });
        assert_eq!(on.attributed, off.attributed);
        assert_eq!(on.total_blocks, off.total_blocks);
        assert_eq!(on.poll_stats, off.poll_stats, "fault-free ⇒ bit-identical");
        assert!(off.poll_health_stats.is_none());
        let stats = on.poll_health_stats.expect("health stats reported");
        assert_eq!(stats.breaker.trips, 0, "no faults, no trips");
        assert_eq!(stats.breaker.quarantined, 0);
        assert!(stats.balanced(), "{stats:?}");
    }

    #[test]
    fn health_layer_survives_supervision_under_faults() {
        use minedig_primitives::supervise::CrashPolicy;
        let plan = FaultPlan::transient_only(77, 0.4);
        let config = ScenarioConfig {
            duration_days: 2,
            seed: 9,
            poll_retry: RetryPolicy::attempts(plan.attempts_to_clear()),
            poll_faults: Some(plan),
            poll_health: Some(HealthConfig::default()),
            ..ScenarioConfig::default()
        };
        let reference = run_scenario(config.clone());
        assert!(reference.poll_stats.retries > 0, "p=0.4 must force retries");
        assert!(reference.poll_stats.balanced());
        let ref_health = reference.poll_health_stats.expect("health stats");
        assert!(ref_health.balanced(), "{ref_health:?}");

        let (dir, store) = sup_store("health");
        let sup = Supervisor::new(CrashPolicy {
            ckpt_every_items: 4,
            ..CrashPolicy::default()
        })
        .with_kills(vec![3, 11]);
        let run = run_scenario_supervised(&config, &store, "attr", &sup, false).unwrap();
        assert_results_eq(&run.output, &reference, "health-on killed run");
        assert_eq!(
            run.output.poll_health_stats.as_ref().expect("health stats"),
            &ref_health,
            "breaker/hedge accounting must survive kill-and-resume"
        );
        assert!(run.report.balanced(), "{:?}", run.report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_polling_does_not_change_the_scenario() {
        let seq = short_scenario(2, 9);
        let par = run_scenario(ScenarioConfig {
            duration_days: 2,
            seed: 9,
            poll_shards: 4,
            ..ScenarioConfig::default()
        });
        assert_eq!(par.attributed, seq.attributed);
        assert_eq!(par.total_blocks, seq.total_blocks);
        assert_eq!(par.poll_stats.polls, seq.poll_stats.polls);
        assert_eq!(par.poll_stats.answered, seq.poll_stats.answered);
        assert_eq!(par.poll_stats.offline, seq.poll_stats.offline);
        assert_eq!(
            par.poll_stats.max_blobs_per_prev,
            seq.poll_stats.max_blobs_per_prev
        );
    }
}
