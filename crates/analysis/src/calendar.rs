//! The Figure 5 day × hour-of-day block matrix.

use crate::attribution::AttributedBlock;

/// A day×24 matrix of attributed block counts plus marginals.
#[derive(Clone, Debug)]
pub struct BlockCalendar {
    /// Window start (unix seconds, midnight-aligned by construction).
    pub start: u64,
    /// Per-day, per-hour counts.
    pub grid: Vec<[u32; 24]>,
    /// Days with zero observer coverage (infrastructure outages are
    /// rendered black in the paper's figure).
    pub outage_days: Vec<usize>,
}

impl BlockCalendar {
    /// Builds the calendar over `[start, start + days*86400)`.
    pub fn new(blocks: &[AttributedBlock], start: u64, days: usize) -> BlockCalendar {
        let mut grid = vec![[0u32; 24]; days];
        for b in blocks {
            if b.found_at < start {
                continue;
            }
            let offset = b.found_at - start;
            let day = (offset / 86_400) as usize;
            if day >= days {
                continue;
            }
            let hour = ((offset % 86_400) / 3_600) as usize;
            grid[day][hour] += 1;
        }
        BlockCalendar {
            start,
            grid,
            outage_days: Vec::new(),
        }
    }

    /// Marks outage days (driver supplies them from observer gap stats).
    pub fn with_outages(mut self, days: Vec<usize>) -> BlockCalendar {
        self.outage_days = days;
        self
    }

    /// Blocks per day (the right marginal of Fig 5).
    pub fn per_day(&self) -> Vec<u32> {
        self.grid.iter().map(|row| row.iter().sum()).collect()
    }

    /// Blocks per hour-of-day across all days (the top marginal).
    pub fn per_hour(&self) -> [u32; 24] {
        let mut out = [0u32; 24];
        for row in &self.grid {
            for (h, &c) in row.iter().enumerate() {
                out[h] += c;
            }
        }
        out
    }

    /// Median blocks/day.
    pub fn median_per_day(&self) -> f64 {
        let mut v: Vec<u64> = self.per_day().iter().map(|&c| c as u64).collect();
        if v.is_empty() {
            return 0.0;
        }
        minedig_primitives::stats::median_u64(&mut v)
    }

    /// Days (indices) with strictly more blocks than `threshold` × the
    /// median — the holiday spikes the paper points out.
    pub fn spike_days(&self, threshold: f64) -> Vec<usize> {
        let median = self.median_per_day();
        self.per_day()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c as f64 > median * threshold)
            .map(|(d, _)| d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_primitives::Hash32;

    fn block_at(found_at: u64) -> AttributedBlock {
        AttributedBlock {
            height: 0,
            block_id: Hash32::keccak(&found_at.to_le_bytes()),
            timestamp: found_at,
            found_at,
            reward: 1,
        }
    }

    #[test]
    fn grid_placement() {
        let blocks = vec![
            block_at(0),                       // day 0, hour 0
            block_at(3_600),                   // day 0, hour 1
            block_at(86_400 + 2 * 3_600 + 59), // day 1, hour 2
        ];
        let cal = BlockCalendar::new(&blocks, 0, 2);
        assert_eq!(cal.grid[0][0], 1);
        assert_eq!(cal.grid[0][1], 1);
        assert_eq!(cal.grid[1][2], 1);
        assert_eq!(cal.per_day(), vec![2, 1]);
        assert_eq!(cal.per_hour()[2], 1);
    }

    #[test]
    fn out_of_window_blocks_skipped() {
        let blocks = vec![block_at(0), block_at(86_400 * 5)];
        let cal = BlockCalendar::new(&blocks, 0, 2);
        assert_eq!(cal.per_day().iter().sum::<u32>(), 1);
    }

    #[test]
    fn median_and_spikes() {
        // 6 quiet days (2 blocks) + 1 spike day (10 blocks).
        let mut blocks = Vec::new();
        for d in 0..6u64 {
            blocks.push(block_at(d * 86_400 + 100));
            blocks.push(block_at(d * 86_400 + 7_200));
        }
        for i in 0..10u64 {
            blocks.push(block_at(6 * 86_400 + i * 3_000));
        }
        let cal = BlockCalendar::new(&blocks, 0, 7);
        assert_eq!(cal.median_per_day(), 2.0);
        assert_eq!(cal.spike_days(1.5), vec![6]);
    }

    #[test]
    fn outage_marking() {
        let cal = BlockCalendar::new(&[], 0, 3).with_outages(vec![1]);
        assert_eq!(cal.outage_days, vec![1]);
        assert_eq!(cal.median_per_day(), 0.0);
    }
}
