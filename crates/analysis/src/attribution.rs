//! Block attribution: match a new block's Merkle root against the blob
//! cluster observed for its previous-block pointer.

use minedig_chain::block::Block;
use minedig_primitives::Hash32;
use std::collections::BTreeSet;

/// A block attributed to the observed pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributedBlock {
    /// Chain height.
    pub height: u64,
    /// Block id.
    pub block_id: Hash32,
    /// Block timestamp (template time).
    pub timestamp: u64,
    /// Time the block was accepted (driver-supplied, for calendars).
    pub found_at: u64,
    /// Coinbase reward in atomic units.
    pub reward: u64,
}

/// Attribution bookkeeping.
#[derive(Debug, Default)]
pub struct Attributor {
    /// Blocks proven to be pool-mined.
    pub attributed: Vec<AttributedBlock>,
    /// Blocks judged against an observed cluster that did not match —
    /// genuinely other miners' blocks.
    pub unmatched: u64,
    /// Blocks judged with no cluster available (observation gaps:
    /// outages, startup, missed heights). These say nothing about who
    /// mined the block, so they are excluded from
    /// [`attribution_share`](Attributor::attribution_share); previously
    /// they were folded into `unmatched` and deflated the share.
    pub gaps: u64,
}

impl Attributor {
    /// Creates an empty attributor.
    pub fn new() -> Attributor {
        Attributor::default()
    }

    /// Judges one accepted block against the cluster observed for its
    /// prev pointer (if any). Returns true if attributed.
    pub fn judge(
        &mut self,
        block: &Block,
        found_at: u64,
        cluster: Option<&BTreeSet<Hash32>>,
    ) -> bool {
        let Some(roots) = cluster else {
            self.gaps += 1;
            return false;
        };
        let matched = roots.contains(&block.merkle_root());
        if matched {
            self.attributed.push(AttributedBlock {
                height: block
                    .miner_tx
                    .kind
                    .clone()
                    .coinbase_height()
                    .unwrap_or_default(),
                block_id: block.id(),
                timestamp: block.header.timestamp,
                found_at,
                reward: block.miner_tx.coinbase_reward().unwrap_or(0),
            });
        } else {
            self.unmatched += 1;
        }
        matched
    }

    /// Total XMR-equivalent atomic units earned by attributed blocks.
    pub fn total_reward(&self) -> u64 {
        self.attributed.iter().map(|b| b.reward).sum()
    }

    /// Share of *decidable* judged blocks attributed to the pool.
    /// Observation gaps carry no evidence either way and are excluded
    /// from the denominator.
    pub fn attribution_share(&self) -> f64 {
        let total = self.attributed.len() as u64 + self.unmatched;
        if total == 0 {
            return 0.0;
        }
        self.attributed.len() as f64 / total as f64
    }
}

/// Helper: extract the Coinbase height from a tx kind.
trait CoinbaseHeight {
    fn coinbase_height(self) -> Option<u64>;
}

impl CoinbaseHeight for minedig_chain::tx::TxKind {
    fn coinbase_height(self) -> Option<u64> {
        match self {
            minedig_chain::tx::TxKind::Coinbase { height, .. } => Some(height),
            minedig_chain::tx::TxKind::Transfer { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_chain::block::BlockHeader;
    use minedig_chain::tx::{MinerTag, Transaction};

    fn block(extra: Vec<u8>) -> Block {
        Block {
            header: BlockHeader {
                major_version: 7,
                minor_version: 7,
                timestamp: 1_000,
                prev_id: Hash32::keccak(b"prev"),
                nonce: 5,
            },
            miner_tx: Transaction::coinbase(42, 999, MinerTag::from_label("pool"), extra),
            txs: vec![Transaction::transfer(Hash32::keccak(b"t"))],
        }
    }

    #[test]
    fn matching_root_attributes() {
        let b = block(vec![1]);
        let mut cluster = BTreeSet::new();
        cluster.insert(b.merkle_root());
        cluster.insert(Hash32::keccak(b"unrelated"));
        let mut a = Attributor::new();
        assert!(a.judge(&b, 1_060, Some(&cluster)));
        assert_eq!(a.attributed.len(), 1);
        assert_eq!(a.attributed[0].height, 42);
        assert_eq!(a.attributed[0].reward, 999);
        assert_eq!(a.attributed[0].found_at, 1_060);
        assert_eq!(a.total_reward(), 999);
    }

    #[test]
    fn non_matching_root_does_not_attribute() {
        // A block whose Coinbase extra differs from every observed
        // template — i.e. another miner's block.
        let other = block(vec![2]);
        let mut cluster = BTreeSet::new();
        cluster.insert(block(vec![1]).merkle_root());
        let mut a = Attributor::new();
        assert!(!a.judge(&other, 1_060, Some(&cluster)));
        assert_eq!(a.unmatched, 1);
        assert!(a.attributed.is_empty());
    }

    #[test]
    fn missing_cluster_counts_as_gap_not_unmatched() {
        // Regression: a judge with no cluster used to land in
        // `unmatched`, conflating "we weren't watching" with "another
        // miner won" and deflating the share.
        let mut a = Attributor::new();
        assert!(!a.judge(&block(vec![1]), 1_060, None));
        assert_eq!(a.gaps, 1);
        assert_eq!(a.unmatched, 0);
        assert_eq!(a.attribution_share(), 0.0);
    }

    #[test]
    fn attribution_share_excludes_gaps() {
        let b = block(vec![1]);
        let mut cluster = BTreeSet::new();
        cluster.insert(b.merkle_root());
        let mut a = Attributor::new();
        a.judge(&b, 0, Some(&cluster)); // attributed
        a.judge(&block(vec![9]), 0, Some(&cluster)); // unmatched
        a.judge(&block(vec![8]), 0, None); // gap: not in the denominator
        assert_eq!(a.gaps, 1);
        assert_eq!(a.unmatched, 1);
        assert!((a.attribution_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_share_is_zero() {
        assert_eq!(Attributor::new().attribution_share(), 0.0);
    }
}
