#![warn(missing_docs)]
//! The §4.2 analysis: associating blocks in a privacy-preserving
//! blockchain with a mining pool, and the economics built on top.
//!
//! Methodology (quoted from the paper): connect to every pool endpoint
//! and request fresh PoW inputs continuously; *"we cluster the PoW inputs
//! by the pointer to the previous (at time of reception, most recent)
//! block"*; when a new block appears, *"if the transactions in that block
//! form a Merkle tree whose root is equal to that in the PoW input, we
//! can be sure that the PoW input was the one that was used to mine the
//! block"* — the Coinbase leaf makes cross-pool collisions impossible.
//!
//! * [`poller`] — the endpoint observer (handles the pool's XOR blob
//!   obfuscation, records distinct blobs per previous-block pointer and
//!   outage gaps),
//! * [`attribution`] — the prev-pointer clustering and Merkle-root match,
//! * [`estimate`] — difficulty→hashrate, pool share, user-count bounds
//!   (20–100 H/s per client) and XMR revenue accounting,
//! * [`calendar`] — the Figure 5 day×hour block matrix,
//! * [`economics`] — XMR→USD conversion, the 70/30 split, per-site
//!   revenue arithmetic (the paper's feasibility discussion),
//! * [`scenario`] — a turnkey §4.2 world: rest-of-network actor + the
//!   instrumented Coinhive-style pool + observer + attributor wired into
//!   the chain netsim, with diurnal/holiday/outage modulation.

pub mod attribution;
pub mod calendar;
pub mod economics;
pub mod estimate;
pub mod poller;
pub mod scenario;

pub use attribution::{AttributedBlock, Attributor};
pub use calendar::BlockCalendar;
pub use poller::{Observer, PollCampaign};
pub use scenario::{run_scenario, ScenarioConfig, ScenarioResult};
