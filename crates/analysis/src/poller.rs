//! The endpoint observer.
//!
//! The paper requests a new PoW input from every Coinhive endpoint every
//! 500 ms. Our pool's blobs change only when a backend refreshes its
//! template (every `template_refresh_secs`), so the default poll interval
//! matches that granularity — polling faster only re-reads identical
//! blobs. The observer reverts the XOR obfuscation (which the paper had
//! to discover first) before parsing.

use minedig_chain::blob::HashingBlob;
use minedig_pool::obfuscation;
use minedig_pool::pool::{JobError, Pool};
use minedig_primitives::par::{ExecStats, ParallelExecutor, ShardedTask};
use minedig_primitives::Hash32;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// One observed, de-obfuscated PoW input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobObservation {
    /// Virtual time of observation.
    pub seen_at: u64,
    /// Endpoint index it came from.
    pub endpoint: usize,
    /// Parsed blob.
    pub blob: HashingBlob,
}

/// Statistics the observer keeps.
#[derive(Clone, Debug, Default)]
pub struct PollStats {
    /// Total poll requests issued.
    pub polls: u64,
    /// Polls answered with a job.
    pub answered: u64,
    /// Polls refused because the pool was offline (outages).
    pub offline: u64,
    /// Polls refused for any other reason (no tip announced yet, bad
    /// endpoint index). Previously these were silently dropped, making
    /// "no data because the chain hasn't started" indistinguishable from
    /// "no data because the pool was down".
    pub other_errors: u64,
    /// Blobs that failed to parse after de-obfuscation.
    pub parse_failures: u64,
    /// Maximum distinct blobs observed for a single prev pointer.
    pub max_blobs_per_prev: usize,
}

/// The observer: polls all endpoints and maintains the *current* cluster
/// of distinct Merkle roots per previous-block pointer.
pub struct Observer {
    pool: Pool,
    deobfuscate: bool,
    /// Roots collected for the currently-observed prev pointer.
    current_prev: Option<Hash32>,
    current_roots: BTreeSet<Hash32>,
    /// Distinct serialized blobs for the current prev (diagnostics — the
    /// paper's "at most 128 different PoW inputs per block").
    current_blobs: BTreeSet<Vec<u8>>,
    stats: PollStats,
}

impl Observer {
    /// Creates an observer for a pool. `deobfuscate` should be true once
    /// the XOR countermeasure is known (the paper's final tooling).
    pub fn new(pool: Pool, deobfuscate: bool) -> Observer {
        Observer {
            pool,
            deobfuscate,
            current_prev: None,
            current_roots: BTreeSet::new(),
            current_blobs: BTreeSet::new(),
            stats: PollStats::default(),
        }
    }

    /// Polls every endpoint once at virtual time `now` (sequentially).
    pub fn poll_all(&mut self, now: u64) {
        self.poll_all_sharded(now, &ParallelExecutor::sequential());
    }

    /// Polls every endpoint once at virtual time `now`, fanning the
    /// endpoint range across `executor`'s shards.
    ///
    /// Polling and parsing happen in parallel; the parsed observations
    /// are then applied to the cluster state **in endpoint order** (the
    /// merge concatenates contiguous shards in shard-index order), so the
    /// resulting clusters, prev pointer, and [`PollStats`] are identical
    /// to the sequential [`poll_all`](Observer::poll_all) for any shard
    /// count. Returns the executor stats (`items` counts endpoint polls).
    pub fn poll_all_sharded(&mut self, now: u64, executor: &ParallelExecutor) -> ExecStats {
        let run = executor.execute(&PollTask {
            pool: &self.pool,
            now,
            deobfuscate: self.deobfuscate,
        });
        let delta = run.outcome;
        self.stats.polls += delta.polls;
        self.stats.answered += delta.answered;
        self.stats.offline += delta.offline;
        self.stats.other_errors += delta.other_errors;
        self.stats.parse_failures += delta.parse_failures;
        for (bytes, blob) in delta.observations {
            self.record(bytes, blob);
        }
        run.stats
    }

    fn record(&mut self, bytes: Vec<u8>, blob: HashingBlob) {
        if self.current_prev != Some(blob.prev_id) {
            // New height: the driver is expected to have consumed the old
            // cluster via `take_cluster` when the block appeared; if not
            // (e.g. missed block), reset.
            self.current_prev = Some(blob.prev_id);
            self.current_roots.clear();
            self.current_blobs.clear();
        }
        self.current_roots.insert(blob.merkle_root);
        self.current_blobs.insert(bytes);
        self.stats.max_blobs_per_prev = self.stats.max_blobs_per_prev.max(self.current_blobs.len());
    }

    /// The prev pointer currently being observed.
    pub fn current_prev(&self) -> Option<Hash32> {
        self.current_prev
    }

    /// Number of distinct blobs observed for the current prev.
    pub fn current_blob_count(&self) -> usize {
        self.current_blobs.len()
    }

    /// Takes the cluster for `prev` if it is the one being observed —
    /// called by the attribution driver when a block referencing `prev`
    /// is accepted.
    pub fn take_cluster(&mut self, prev: &Hash32) -> Option<BTreeSet<Hash32>> {
        if self.current_prev == Some(*prev) {
            self.current_prev = None;
            self.current_blobs.clear();
            Some(std::mem::take(&mut self.current_roots))
        } else {
            None
        }
    }

    /// Poll statistics.
    pub fn stats(&self) -> &PollStats {
        &self.stats
    }
}

/// Partial outcome of polling one contiguous endpoint range: additive
/// counters plus the parsed observations in endpoint order.
#[derive(Default)]
struct PollDelta {
    polls: u64,
    answered: u64,
    offline: u64,
    other_errors: u64,
    parse_failures: u64,
    observations: Vec<(Vec<u8>, HashingBlob)>,
}

/// One poll sweep as a [`ShardedTask`] over the endpoint index space.
/// Cluster state is *not* touched here — `record` has order-dependent
/// reset semantics, so the driver applies observations after the merge.
struct PollTask<'a> {
    pool: &'a Pool,
    now: u64,
    deobfuscate: bool,
}

impl ShardedTask for PollTask<'_> {
    type Output = PollDelta;

    fn len(&self) -> usize {
        self.pool.endpoint_count()
    }

    fn run_shard(&self, range: Range<usize>, progress: &AtomicU64) -> PollDelta {
        let mut delta = PollDelta::default();
        for endpoint in range {
            progress.fetch_add(1, Ordering::Relaxed);
            delta.polls += 1;
            match self.pool.peek_job(endpoint, self.now) {
                Err(JobError::Offline) => delta.offline += 1,
                Err(_) => delta.other_errors += 1,
                Ok(job) => {
                    delta.answered += 1;
                    let Ok(mut bytes) = job.blob_bytes() else {
                        delta.parse_failures += 1;
                        continue;
                    };
                    if self.deobfuscate {
                        obfuscation::xor_blob(&mut bytes);
                    }
                    let Ok(blob) = HashingBlob::parse(&bytes) else {
                        delta.parse_failures += 1;
                        continue;
                    };
                    delta.observations.push((bytes, blob));
                }
            }
        }
        delta
    }

    fn merge(&self, acc: &mut PollDelta, mut next: PollDelta) {
        acc.polls += next.polls;
        acc.answered += next.answered;
        acc.offline += next.offline;
        acc.other_errors += next.other_errors;
        acc.parse_failures += next.parse_failures;
        acc.observations.append(&mut next.observations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_chain::netsim::TipInfo;
    use minedig_chain::tx::Transaction;
    use minedig_pool::pool::PoolConfig;

    fn pool_with_tip() -> Pool {
        let pool = Pool::new(PoolConfig::default());
        pool.announce_tip(&TipInfo {
            height: 10,
            prev_id: Hash32::keccak(b"prev-10"),
            prev_timestamp: 1_000,
            reward: 1_000_000,
            difficulty: 100,
            mempool: vec![Transaction::transfer(Hash32::keccak(b"m"))],
        });
        pool
    }

    #[test]
    fn observes_at_most_128_blobs_per_height() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        // Poll across the whole template-version window.
        for t in (1_000..1_150).step_by(5) {
            obs.poll_all(t);
        }
        assert_eq!(obs.stats().max_blobs_per_prev, 128);
        assert_eq!(obs.current_blob_count(), 128);
        // 16 backends × 8 versions = 128 distinct roots as well.
        assert_eq!(obs.current_roots.len(), 128);
    }

    #[test]
    fn single_poll_sees_one_blob_per_backend() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        // 32 endpoints share 16 backends → 16 distinct blobs.
        assert_eq!(obs.current_blob_count(), 16);
    }

    #[test]
    fn deobfuscation_recovers_true_prev() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        assert_eq!(obs.current_prev(), Some(Hash32::keccak(b"prev-10")));
    }

    #[test]
    fn without_deobfuscation_prev_is_garbage() {
        // The naive observer (before discovering the XOR) clusters on a
        // corrupted prev pointer.
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, false);
        obs.poll_all(1_000);
        assert_ne!(obs.current_prev(), Some(Hash32::keccak(b"prev-10")));
    }

    #[test]
    fn outage_is_counted() {
        let pool = pool_with_tip();
        pool.set_online(false);
        let mut obs = Observer::new(pool.clone(), true);
        obs.poll_all(1_000);
        assert_eq!(obs.stats().offline, 32);
        assert_eq!(obs.stats().answered, 0);
        pool.set_online(true);
        obs.poll_all(1_020);
        assert_eq!(obs.stats().answered, 32);
    }

    #[test]
    fn no_tip_is_counted_not_swallowed() {
        // Regression: pre-fix, `Err(_) => {}` dropped NoTip/BadEndpoint
        // silently, so a pool with no announced tip looked identical to
        // one answering normally (polls ≠ answered + offline + …).
        let pool = Pool::new(PoolConfig::default());
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        let s = obs.stats();
        assert_eq!(s.other_errors, 32);
        assert_eq!(s.answered, 0);
        assert_eq!(s.offline, 0);
        assert_eq!(s.polls, s.answered + s.offline + s.other_errors);
    }

    #[test]
    fn sharded_poll_matches_sequential() {
        for shards in [1, 2, 3, 5, 16, 64] {
            let pool = pool_with_tip();
            let mut seq = Observer::new(pool.clone(), true);
            let mut par = Observer::new(pool, true);
            let executor = ParallelExecutor::new(shards);
            for t in (1_000..1_150).step_by(5) {
                seq.poll_all(t);
                let stats = par.poll_all_sharded(t, &executor);
                assert_eq!(stats.shards, shards);
                assert_eq!(stats.items, 32);
            }
            assert_eq!(par.current_prev(), seq.current_prev(), "shards={shards}");
            assert_eq!(par.current_roots, seq.current_roots, "shards={shards}");
            assert_eq!(par.current_blobs, seq.current_blobs, "shards={shards}");
            let (ss, ps) = (seq.stats(), par.stats());
            assert_eq!(ps.polls, ss.polls, "shards={shards}");
            assert_eq!(ps.answered, ss.answered, "shards={shards}");
            assert_eq!(ps.offline, ss.offline, "shards={shards}");
            assert_eq!(ps.other_errors, ss.other_errors, "shards={shards}");
            assert_eq!(ps.parse_failures, ss.parse_failures, "shards={shards}");
            assert_eq!(
                ps.max_blobs_per_prev, ss.max_blobs_per_prev,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_poll_counts_outages_identically() {
        let pool = pool_with_tip();
        pool.set_online(false);
        let mut obs = Observer::new(pool.clone(), true);
        obs.poll_all_sharded(1_000, &ParallelExecutor::new(4));
        assert_eq!(obs.stats().offline, 32);
        pool.set_online(true);
        obs.poll_all_sharded(1_020, &ParallelExecutor::new(4));
        assert_eq!(obs.stats().answered, 32);
    }

    #[test]
    fn take_cluster_resets_state() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        let prev = Hash32::keccak(b"prev-10");
        let cluster = obs.take_cluster(&prev).unwrap();
        assert_eq!(cluster.len(), 16);
        assert_eq!(obs.current_prev(), None);
        assert!(obs.take_cluster(&prev).is_none());
    }

    #[test]
    fn new_height_resets_cluster() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool.clone(), true);
        obs.poll_all(1_000);
        pool.announce_tip(&TipInfo {
            height: 11,
            prev_id: Hash32::keccak(b"prev-11"),
            prev_timestamp: 1_120,
            reward: 1_000_000,
            difficulty: 100,
            mempool: vec![],
        });
        obs.poll_all(1_120);
        assert_eq!(obs.current_prev(), Some(Hash32::keccak(b"prev-11")));
        assert_eq!(obs.current_blob_count(), 16);
    }
}
