//! The endpoint observer.
//!
//! The paper requests a new PoW input from every Coinhive endpoint every
//! 500 ms. Our pool's blobs change only when a backend refreshes its
//! template (every `template_refresh_secs`), so the default poll interval
//! matches that granularity — polling faster only re-reads identical
//! blobs. The observer reverts the XOR obfuscation (which the paper had
//! to discover first) before parsing.

use minedig_chain::blob::HashingBlob;
use minedig_pool::obfuscation;
use minedig_pool::pool::{JobError, Pool};
use minedig_primitives::Hash32;
use std::collections::BTreeSet;

/// One observed, de-obfuscated PoW input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobObservation {
    /// Virtual time of observation.
    pub seen_at: u64,
    /// Endpoint index it came from.
    pub endpoint: usize,
    /// Parsed blob.
    pub blob: HashingBlob,
}

/// Statistics the observer keeps.
#[derive(Clone, Debug, Default)]
pub struct PollStats {
    /// Total poll requests issued.
    pub polls: u64,
    /// Polls answered with a job.
    pub answered: u64,
    /// Polls refused because the pool was offline (outages).
    pub offline: u64,
    /// Blobs that failed to parse after de-obfuscation.
    pub parse_failures: u64,
    /// Maximum distinct blobs observed for a single prev pointer.
    pub max_blobs_per_prev: usize,
}

/// The observer: polls all endpoints and maintains the *current* cluster
/// of distinct Merkle roots per previous-block pointer.
pub struct Observer {
    pool: Pool,
    deobfuscate: bool,
    /// Roots collected for the currently-observed prev pointer.
    current_prev: Option<Hash32>,
    current_roots: BTreeSet<Hash32>,
    /// Distinct serialized blobs for the current prev (diagnostics — the
    /// paper's "at most 128 different PoW inputs per block").
    current_blobs: BTreeSet<Vec<u8>>,
    stats: PollStats,
}

impl Observer {
    /// Creates an observer for a pool. `deobfuscate` should be true once
    /// the XOR countermeasure is known (the paper's final tooling).
    pub fn new(pool: Pool, deobfuscate: bool) -> Observer {
        Observer {
            pool,
            deobfuscate,
            current_prev: None,
            current_roots: BTreeSet::new(),
            current_blobs: BTreeSet::new(),
            stats: PollStats::default(),
        }
    }

    /// Polls every endpoint once at virtual time `now`.
    pub fn poll_all(&mut self, now: u64) {
        for endpoint in 0..self.pool.endpoint_count() {
            self.stats.polls += 1;
            match self.pool.peek_job(endpoint, now) {
                Err(JobError::Offline) => self.stats.offline += 1,
                Err(_) => {}
                Ok(job) => {
                    self.stats.answered += 1;
                    let Ok(mut bytes) = job.blob_bytes() else {
                        self.stats.parse_failures += 1;
                        continue;
                    };
                    if self.deobfuscate {
                        obfuscation::xor_blob(&mut bytes);
                    }
                    let Ok(blob) = HashingBlob::parse(&bytes) else {
                        self.stats.parse_failures += 1;
                        continue;
                    };
                    self.record(bytes, blob);
                }
            }
        }
    }

    fn record(&mut self, bytes: Vec<u8>, blob: HashingBlob) {
        if self.current_prev != Some(blob.prev_id) {
            // New height: the driver is expected to have consumed the old
            // cluster via `take_cluster` when the block appeared; if not
            // (e.g. missed block), reset.
            self.current_prev = Some(blob.prev_id);
            self.current_roots.clear();
            self.current_blobs.clear();
        }
        self.current_roots.insert(blob.merkle_root);
        self.current_blobs.insert(bytes);
        self.stats.max_blobs_per_prev = self.stats.max_blobs_per_prev.max(self.current_blobs.len());
    }

    /// The prev pointer currently being observed.
    pub fn current_prev(&self) -> Option<Hash32> {
        self.current_prev
    }

    /// Number of distinct blobs observed for the current prev.
    pub fn current_blob_count(&self) -> usize {
        self.current_blobs.len()
    }

    /// Takes the cluster for `prev` if it is the one being observed —
    /// called by the attribution driver when a block referencing `prev`
    /// is accepted.
    pub fn take_cluster(&mut self, prev: &Hash32) -> Option<BTreeSet<Hash32>> {
        if self.current_prev == Some(*prev) {
            self.current_prev = None;
            self.current_blobs.clear();
            Some(std::mem::take(&mut self.current_roots))
        } else {
            None
        }
    }

    /// Poll statistics.
    pub fn stats(&self) -> &PollStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_chain::netsim::TipInfo;
    use minedig_chain::tx::Transaction;
    use minedig_pool::pool::PoolConfig;

    fn pool_with_tip() -> Pool {
        let pool = Pool::new(PoolConfig::default());
        pool.announce_tip(&TipInfo {
            height: 10,
            prev_id: Hash32::keccak(b"prev-10"),
            prev_timestamp: 1_000,
            reward: 1_000_000,
            difficulty: 100,
            mempool: vec![Transaction::transfer(Hash32::keccak(b"m"))],
        });
        pool
    }

    #[test]
    fn observes_at_most_128_blobs_per_height() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        // Poll across the whole template-version window.
        for t in (1_000..1_150).step_by(5) {
            obs.poll_all(t);
        }
        assert_eq!(obs.stats().max_blobs_per_prev, 128);
        assert_eq!(obs.current_blob_count(), 128);
        // 16 backends × 8 versions = 128 distinct roots as well.
        assert_eq!(obs.current_roots.len(), 128);
    }

    #[test]
    fn single_poll_sees_one_blob_per_backend() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        // 32 endpoints share 16 backends → 16 distinct blobs.
        assert_eq!(obs.current_blob_count(), 16);
    }

    #[test]
    fn deobfuscation_recovers_true_prev() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        assert_eq!(obs.current_prev(), Some(Hash32::keccak(b"prev-10")));
    }

    #[test]
    fn without_deobfuscation_prev_is_garbage() {
        // The naive observer (before discovering the XOR) clusters on a
        // corrupted prev pointer.
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, false);
        obs.poll_all(1_000);
        assert_ne!(obs.current_prev(), Some(Hash32::keccak(b"prev-10")));
    }

    #[test]
    fn outage_is_counted() {
        let pool = pool_with_tip();
        pool.set_online(false);
        let mut obs = Observer::new(pool.clone(), true);
        obs.poll_all(1_000);
        assert_eq!(obs.stats().offline, 32);
        assert_eq!(obs.stats().answered, 0);
        pool.set_online(true);
        obs.poll_all(1_020);
        assert_eq!(obs.stats().answered, 32);
    }

    #[test]
    fn take_cluster_resets_state() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        let prev = Hash32::keccak(b"prev-10");
        let cluster = obs.take_cluster(&prev).unwrap();
        assert_eq!(cluster.len(), 16);
        assert_eq!(obs.current_prev(), None);
        assert!(obs.take_cluster(&prev).is_none());
    }

    #[test]
    fn new_height_resets_cluster() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool.clone(), true);
        obs.poll_all(1_000);
        pool.announce_tip(&TipInfo {
            height: 11,
            prev_id: Hash32::keccak(b"prev-11"),
            prev_timestamp: 1_120,
            reward: 1_000_000,
            difficulty: 100,
            mempool: vec![],
        });
        obs.poll_all(1_120);
        assert_eq!(obs.current_prev(), Some(Hash32::keccak(b"prev-11")));
        assert_eq!(obs.current_blob_count(), 16);
    }
}
