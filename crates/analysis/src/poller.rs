//! The endpoint observer.
//!
//! The paper requests a new PoW input from every Coinhive endpoint every
//! 500 ms. Our pool's blobs change only when a backend refreshes its
//! template (every `template_refresh_secs`), so the default poll interval
//! matches that granularity — polling faster only re-reads identical
//! blobs. The observer reverts the XOR obfuscation (which the paper had
//! to discover first) before parsing.
//!
//! The observer is written against [`JobSource`] so the transport can
//! fail: each endpoint gets a per-sweep retry budget (deterministic
//! backoff jitter, reconnect on teardown), and an endpoint that
//! exhausts it is marked down for the sweep — a counted observation
//! gap, never silent data loss.

use minedig_chain::blob::HashingBlob;
use minedig_net::transport::{Transport, TransportError};
use minedig_pool::obfuscation;
use minedig_pool::pool::{JobError, Pool};
use minedig_pool::protocol::{ClientMsg, Job, ServerMsg};
use minedig_primitives::aexec::{AsyncExecutor, AsyncStats, IdleWait, IoPoll, YieldBackoff};
use minedig_primitives::ckpt::{Checkpointable, CkptError, SnapReader, SnapWriter, Snapshot};
use minedig_primitives::fault::{Fault, FaultPlan};
use minedig_primitives::health::{
    EndpointHealth, HealthConfig, HealthStats, ProbeOutcome, ProbePlan,
};
use minedig_primitives::par::{ExecStats, ParallelExecutor, ShardedTask};
use minedig_primitives::retry::{retry, Clock, ErrorClass, RetryPolicy, Retryable, VirtualClock};
use minedig_primitives::rng::DetRng;
use minedig_primitives::supervise::{Backend, Campaign};
use minedig_primitives::Hash32;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::ops::{ControlFlow, Range};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::task::Poll;
use std::time::Duration;

/// Why a single job fetch failed.
///
/// Semantic refusals come from the pool itself and retrying within the
/// same sweep cannot change them; transport failures are artifacts of
/// the path to the pool and are worth retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchError {
    /// The pool reported itself offline (a real outage — §4.2's 6–7 May
    /// disruption). Semantic; never retried within a sweep.
    Offline,
    /// The pool refused for another semantic reason (no tip announced
    /// yet, bad endpoint index). Semantic; never retried.
    Refused,
    /// The request or its response timed out. Transport; transient.
    Timeout,
    /// The connection was torn down mid-request. Transport; transient
    /// after a reconnect.
    Closed,
    /// The response arrived corrupted. Transport; transient.
    Garbled,
    /// The server shed the request under load (admission control). The
    /// connection stays up and a later attempt may be admitted, so this
    /// is transient — the one refusal that is *about* the request rate,
    /// not the request.
    Shed,
}

impl Retryable for FetchError {
    fn error_class(&self) -> ErrorClass {
        match self {
            FetchError::Offline | FetchError::Refused => ErrorClass::Permanent,
            FetchError::Timeout | FetchError::Closed | FetchError::Garbled | FetchError::Shed => {
                ErrorClass::Transient
            }
        }
    }
}

/// Something the observer can request PoW jobs from.
///
/// The real pool implements this infallibly at the transport level;
/// [`FaultyJobSource`] decorates any source with a seeded fault
/// schedule for chaos testing.
pub trait JobSource: Sync {
    /// Number of pollable endpoints.
    fn endpoint_count(&self) -> usize;
    /// Requests the current job from `endpoint` at virtual time `now`.
    /// `attempt` is the zero-based retry index within the sweep, which
    /// fault schedules key on.
    fn fetch_job(&self, endpoint: usize, now: u64, attempt: u32) -> Result<Job, FetchError>;
    /// Re-establishes a torn-down connection to `endpoint`. Returns
    /// whether a reconnect actually happened (the default source has no
    /// connection state and returns `false`).
    fn reconnect(&self, endpoint: usize) -> bool {
        let _ = endpoint;
        false
    }
    /// Per-endpoint down flags, for checkpointing: an endpoint left
    /// down at the end of one sweep fails its first fetch of the next,
    /// so the flags are cross-sweep state a resumed campaign must
    /// restore. Stateless sources return an empty vec.
    fn connections_down(&self) -> Vec<bool> {
        Vec::new()
    }
    /// Restores down flags captured by
    /// [`connections_down`](JobSource::connections_down). Stateless
    /// sources ignore it.
    fn set_connections_down(&self, down: &[bool]) {
        let _ = down;
    }
}

impl JobSource for Pool {
    fn endpoint_count(&self) -> usize {
        Pool::endpoint_count(self)
    }

    fn fetch_job(&self, endpoint: usize, now: u64, _attempt: u32) -> Result<Job, FetchError> {
        self.peek_job(endpoint, now).map_err(|e| match e {
            JobError::Offline => FetchError::Offline,
            _ => FetchError::Refused,
        })
    }
}

/// A [`JobSource`] decorator injecting deterministic transport faults.
///
/// Faults are keyed by `(endpoint, now)`, so a schedule is a pure
/// function of the plan seed and the sweep times — invariant under the
/// shard count and under interleaving with other endpoints. A
/// [`Fault::Disconnect`] marks the endpoint's connection down; every
/// subsequent fetch fails with [`FetchError::Closed`] until
/// [`JobSource::reconnect`] is called.
pub struct FaultyJobSource<S: JobSource> {
    inner: S,
    plan: FaultPlan,
    down: Vec<AtomicBool>,
}

impl<S: JobSource> FaultyJobSource<S> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyJobSource<S> {
        let endpoints = inner.endpoint_count();
        FaultyJobSource {
            inner,
            plan,
            down: (0..endpoints).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

impl<S: JobSource> JobSource for FaultyJobSource<S> {
    fn endpoint_count(&self) -> usize {
        self.inner.endpoint_count()
    }

    fn fetch_job(&self, endpoint: usize, now: u64, attempt: u32) -> Result<Job, FetchError> {
        if self.down[endpoint].load(Ordering::Acquire) {
            return Err(FetchError::Closed);
        }
        match self.plan.decide(&format!("poll.{endpoint}.{now}"), attempt) {
            None => self.inner.fetch_job(endpoint, now, attempt),
            // Latency alone does not change the observed job.
            Some(Fault::Delay { .. }) => self.inner.fetch_job(endpoint, now, attempt),
            // Crash never comes out of `decide` (the supervisor draws
            // kills from its own stream); defensively a timeout.
            Some(Fault::Drop) | Some(Fault::Stall) | Some(Fault::Crash) => Err(FetchError::Timeout),
            Some(Fault::Disconnect) => {
                self.down[endpoint].store(true, Ordering::Release);
                Err(FetchError::Closed)
            }
            Some(Fault::Garble) => Err(FetchError::Garbled),
        }
    }

    fn reconnect(&self, endpoint: usize) -> bool {
        self.down[endpoint].swap(false, Ordering::AcqRel)
    }

    fn connections_down(&self) -> Vec<bool> {
        self.down
            .iter()
            .map(|d| d.load(Ordering::Acquire))
            .collect()
    }

    fn set_connections_down(&self, down: &[bool]) {
        for (flag, &v) in self.down.iter().zip(down) {
            flag.store(v, Ordering::Release);
        }
    }
}

/// A [`JobSource`] whose fetches can be split into a request phase and a
/// readiness-polled reply phase, so the cooperative executor can hold
/// every endpoint's fetch in flight at once on one thread.
///
/// Contract: `begin_fetch(e, now, a)` followed by polling
/// `poll_fetch(e, now, a)` to `Ready` must produce the same result (and
/// consume the same fault/randomness draws) as one synchronous
/// `fetch_job(e, now, a)` call — that is what keeps the async sweep
/// bit-identical to the sequential and sharded ones. An error from
/// `begin_fetch` is the attempt's result; `poll_fetch` is never called
/// for it.
pub trait AsyncJobSource: JobSource {
    /// Issues the request for one fetch attempt. An `Err` fails the
    /// attempt immediately (fault schedules surface here, so no async
    /// task ever hangs on an injected fault).
    fn begin_fetch(&self, endpoint: usize, now: u64, attempt: u32) -> Result<(), FetchError>;
    /// Polls for the attempt's reply: `Pending` while the wire is quiet.
    fn poll_fetch(&self, endpoint: usize, now: u64, attempt: u32) -> Poll<Result<Job, FetchError>>;
}

impl AsyncJobSource for Pool {
    fn begin_fetch(&self, _endpoint: usize, _now: u64, _attempt: u32) -> Result<(), FetchError> {
        Ok(())
    }

    /// In-process pools answer instantly — the async sweep degenerates
    /// to the sequential one with executor bookkeeping.
    fn poll_fetch(&self, endpoint: usize, now: u64, attempt: u32) -> Poll<Result<Job, FetchError>> {
        Poll::Ready(JobSource::fetch_job(self, endpoint, now, attempt))
    }
}

impl<S: AsyncJobSource> AsyncJobSource for FaultyJobSource<S> {
    /// The identical fault mapping as the synchronous
    /// [`JobSource::fetch_job`] — same decide key, same draw per attempt
    /// — applied at request time so injected faults resolve
    /// synchronously and only genuine wire waits reach the executor's
    /// idle sweep.
    fn begin_fetch(&self, endpoint: usize, now: u64, attempt: u32) -> Result<(), FetchError> {
        if self.down[endpoint].load(Ordering::Acquire) {
            return Err(FetchError::Closed);
        }
        match self.plan.decide(&format!("poll.{endpoint}.{now}"), attempt) {
            None | Some(Fault::Delay { .. }) => self.inner.begin_fetch(endpoint, now, attempt),
            Some(Fault::Drop) | Some(Fault::Stall) | Some(Fault::Crash) => Err(FetchError::Timeout),
            Some(Fault::Disconnect) => {
                self.down[endpoint].store(true, Ordering::Release);
                Err(FetchError::Closed)
            }
            Some(Fault::Garble) => Err(FetchError::Garbled),
        }
    }

    fn poll_fetch(&self, endpoint: usize, now: u64, attempt: u32) -> Poll<Result<Job, FetchError>> {
        self.inner.poll_fetch(endpoint, now, attempt)
    }
}

/// A [`JobSource`] speaking the pool's wire protocol over real
/// transports: one connection per endpoint, each fetch a
/// [`ClientMsg::Peek`] request/reply exchange.
///
/// Any transport error tears the endpoint's connection down (a stray
/// late reply would desynchronise the request/reply pairing), mapping to
/// a transient [`FetchError`] so the observer's retry loop redials via
/// [`JobSource::reconnect`]. Semantic pool errors leave the connection
/// up and classify exactly like the in-process source: a reason
/// mentioning "offline" is an outage, anything else a refusal.
pub struct WireJobSource<T: Transport> {
    endpoints: Vec<Mutex<Option<T>>>,
    connect: Box<dyn Fn(usize) -> Option<T> + Send + Sync>,
    reply_timeout: Duration,
}

fn map_transport(e: TransportError) -> FetchError {
    match e {
        TransportError::Timeout => FetchError::Timeout,
        _ => FetchError::Closed,
    }
}

impl<T: Transport> WireJobSource<T> {
    /// Dials all `endpoints` connections eagerly via `connect` (failed
    /// dials start as down; the first sweep's retry loop redials them).
    /// Blocking fetches wait up to `reply_timeout` for each reply.
    pub fn new(
        endpoints: usize,
        reply_timeout: Duration,
        connect: impl Fn(usize) -> Option<T> + Send + Sync + 'static,
    ) -> WireJobSource<T> {
        let slots = (0..endpoints).map(|e| Mutex::new(connect(e))).collect();
        WireJobSource {
            endpoints: slots,
            connect: Box::new(connect),
            reply_timeout,
        }
    }

    /// Parses one reply frame; tears down on anything undecodable.
    fn classify_reply(slot: &mut Option<T>, raw: &[u8]) -> Result<Job, FetchError> {
        match ServerMsg::decode(raw) {
            Ok(ServerMsg::Job(job)) => Ok(job),
            Ok(ServerMsg::Error { reason }) => {
                if reason.contains("offline") {
                    Err(FetchError::Offline)
                } else {
                    Err(FetchError::Refused)
                }
            }
            // A shed is a well-formed, in-protocol refusal: the
            // connection stays up and the retry loop backs off.
            Ok(ServerMsg::Shed { .. }) => Err(FetchError::Shed),
            Ok(_) | Err(_) => {
                *slot = None;
                Err(FetchError::Garbled)
            }
        }
    }
}

impl<T: Transport> JobSource for WireJobSource<T> {
    fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    fn fetch_job(&self, endpoint: usize, now: u64, _attempt: u32) -> Result<Job, FetchError> {
        let mut slot = self.endpoints[endpoint].lock();
        let Some(t) = slot.as_mut() else {
            return Err(FetchError::Closed);
        };
        let msg = ClientMsg::Peek {
            endpoint: endpoint as u64,
            now,
        };
        if let Err(e) = t.send(&msg.encode()) {
            *slot = None;
            return Err(map_transport(e));
        }
        match t.recv_timeout(self.reply_timeout) {
            Ok(raw) => Self::classify_reply(&mut slot, &raw),
            Err(e) => {
                *slot = None;
                Err(map_transport(e))
            }
        }
    }

    fn reconnect(&self, endpoint: usize) -> bool {
        let mut slot = self.endpoints[endpoint].lock();
        if slot.is_some() {
            return false;
        }
        match (self.connect)(endpoint) {
            Some(t) => {
                *slot = Some(t);
                true
            }
            None => false,
        }
    }
}

impl<T: Transport> AsyncJobSource for WireJobSource<T> {
    fn begin_fetch(&self, endpoint: usize, now: u64, _attempt: u32) -> Result<(), FetchError> {
        let mut slot = self.endpoints[endpoint].lock();
        let Some(t) = slot.as_mut() else {
            return Err(FetchError::Closed);
        };
        let msg = ClientMsg::Peek {
            endpoint: endpoint as u64,
            now,
        };
        if let Err(e) = t.send(&msg.encode()) {
            *slot = None;
            return Err(map_transport(e));
        }
        Ok(())
    }

    fn poll_fetch(
        &self,
        endpoint: usize,
        now: u64,
        _attempt: u32,
    ) -> Poll<Result<Job, FetchError>> {
        let _ = now;
        let mut slot = self.endpoints[endpoint].lock();
        let Some(t) = slot.as_mut() else {
            return Poll::Ready(Err(FetchError::Closed));
        };
        // The executor's readiness probe: zero timeout means "nothing on
        // the wire yet", anything else resolves the attempt.
        match t.recv_timeout(Duration::ZERO) {
            Err(TransportError::Timeout) => Poll::Pending,
            Ok(raw) => Poll::Ready(Self::classify_reply(&mut slot, &raw)),
            Err(e) => {
                *slot = None;
                Poll::Ready(Err(map_transport(e)))
            }
        }
    }
}

/// How the observer retries failed fetches within a sweep.
#[derive(Debug, Clone, Default)]
pub struct PollPolicy {
    /// Retry policy applied per endpoint per sweep.
    pub retry: RetryPolicy,
    /// Seed for the per-endpoint backoff jitter streams.
    pub jitter_seed: u64,
}

impl PollPolicy {
    /// A policy sized to outlast every transient fault of `plan`, making
    /// a sweep provably fault-free-equivalent when nothing is permanent.
    pub fn outlasting(plan: &FaultPlan) -> PollPolicy {
        PollPolicy {
            retry: RetryPolicy::attempts(plan.attempts_to_clear()),
            jitter_seed: plan.seed(),
        }
    }
}

/// One observed, de-obfuscated PoW input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobObservation {
    /// Virtual time of observation.
    pub seen_at: u64,
    /// Endpoint index it came from.
    pub endpoint: usize,
    /// Parsed blob.
    pub blob: HashingBlob,
}

/// Statistics the observer keeps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PollStats {
    /// Total poll requests issued.
    pub polls: u64,
    /// Polls answered with a job.
    pub answered: u64,
    /// Polls refused because the pool was offline (outages).
    pub offline: u64,
    /// Polls refused for any other reason (no tip announced yet, bad
    /// endpoint index). Previously these were silently dropped, making
    /// "no data because the chain hasn't started" indistinguishable from
    /// "no data because the pool was down".
    pub other_errors: u64,
    /// Blobs that failed to parse after de-obfuscation.
    pub parse_failures: u64,
    /// Endpoints whose transport faults exhausted the retry policy in
    /// some sweep — marked down for that sweep, an observation gap. If
    /// every endpoint stays down across a whole height, the attributor
    /// judges that block with no cluster and its `gaps` counter grows.
    pub endpoints_down: u64,
    /// Fetch retries spent across all sweeps.
    pub retries: u64,
    /// Reconnects performed after torn-down connections.
    pub reconnects: u64,
    /// Polls skipped because the endpoint's circuit breaker was open —
    /// a counted observation gap that cost no retry budget. Zero unless
    /// the health layer is enabled *and* endpoints failed enough to
    /// trip, so fault-free runs are unaffected either way.
    pub quarantined: u64,
    /// Shed replies received from the server's admission control across
    /// all attempts (the retry loop may see several per poll).
    pub sheds: u64,
    /// Maximum distinct blobs observed for a single prev pointer.
    pub max_blobs_per_prev: usize,
}

impl PollStats {
    /// Every poll lands in exactly one outcome counter.
    pub fn balanced(&self) -> bool {
        self.polls
            == self.answered
                + self.offline
                + self.other_errors
                + self.endpoints_down
                + self.quarantined
    }

    /// Folds another run's counters into this one. Additive counters
    /// add; `max_blobs_per_prev` takes the max (it is a high-water
    /// mark, not a tally — summing it would double-count across a
    /// resume). Two balanced inputs merge into a balanced output.
    pub fn absorb(&mut self, other: &PollStats) {
        self.polls += other.polls;
        self.answered += other.answered;
        self.offline += other.offline;
        self.other_errors += other.other_errors;
        self.parse_failures += other.parse_failures;
        self.endpoints_down += other.endpoints_down;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.quarantined += other.quarantined;
        self.sheds += other.sheds;
        self.max_blobs_per_prev = self.max_blobs_per_prev.max(other.max_blobs_per_prev);
    }
}

/// The observer: polls all endpoints and maintains the *current* cluster
/// of distinct Merkle roots per previous-block pointer.
pub struct Observer<S: JobSource = Pool> {
    source: S,
    deobfuscate: bool,
    policy: PollPolicy,
    /// Roots collected for the currently-observed prev pointer.
    current_prev: Option<Hash32>,
    current_roots: BTreeSet<Hash32>,
    /// Distinct serialized blobs for the current prev (diagnostics — the
    /// paper's "at most 128 different PoW inputs per block").
    current_blobs: BTreeSet<Vec<u8>>,
    stats: PollStats,
    /// Optional endpoint-health layer: circuit breakers, adaptive
    /// deadlines, and hedge planning. `None` reproduces the pre-health
    /// observer exactly.
    health: Option<EndpointHealth>,
}

impl Observer<Pool> {
    /// Creates an observer for a pool. `deobfuscate` should be true once
    /// the XOR countermeasure is known (the paper's final tooling).
    pub fn new(pool: Pool, deobfuscate: bool) -> Observer<Pool> {
        Observer::with_source(pool, deobfuscate, PollPolicy::default())
    }
}

impl<S: JobSource> Observer<S> {
    /// Creates an observer over any [`JobSource`] with an explicit retry
    /// policy — the entry point for fault-injected runs.
    pub fn with_source(source: S, deobfuscate: bool, policy: PollPolicy) -> Observer<S> {
        Observer {
            source,
            deobfuscate,
            policy,
            current_prev: None,
            current_roots: BTreeSet::new(),
            current_blobs: BTreeSet::new(),
            stats: PollStats::default(),
            health: None,
        }
    }

    /// Enables the endpoint-health layer (circuit breakers, adaptive
    /// deadlines, hedged probes) with the given configuration. Must be
    /// called before the first sweep; a restored campaign must enable it
    /// with the same configuration it ran with.
    pub fn with_health(mut self, config: HealthConfig) -> Observer<S> {
        let endpoints = self.source.endpoint_count();
        self.health = Some(EndpointHealth::new(config, endpoints));
        self
    }

    /// The health layer, when enabled.
    pub fn health(&self) -> Option<&EndpointHealth> {
        self.health.as_ref()
    }

    /// Aggregated health-layer counters, when enabled.
    pub fn health_stats(&self) -> Option<HealthStats> {
        self.health.as_ref().map(EndpointHealth::stats)
    }

    /// The per-endpoint plans for a sweep at `now`: breaker decisions
    /// when the health layer is on, pass-through plans otherwise. Must
    /// run strictly before the fan-out so every backend sees identical
    /// decisions (breaker state advances only in
    /// [`record_health`](Observer::record_health), after the merge).
    fn sweep_plans(&mut self, now: u64) -> Vec<ProbePlan> {
        match self.health.as_mut() {
            Some(h) => h.plan_sweep(now),
            None => vec![ProbePlan::pass(); self.source.endpoint_count()],
        }
    }

    /// Folds a sweep's merged probe outcomes back into the health layer.
    fn record_health(&mut self, now: u64, plans: &[ProbePlan], outcomes: &[ProbeOutcome]) {
        if let Some(h) = self.health.as_mut() {
            h.record_sweep(now, plans, outcomes);
        }
    }

    /// The underlying job source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Polls every endpoint once at virtual time `now` (sequentially).
    pub fn poll_all(&mut self, now: u64) {
        self.poll_all_sharded(now, &ParallelExecutor::sequential());
    }

    /// Polls every endpoint once at virtual time `now`, fanning the
    /// endpoint range across `executor`'s shards.
    ///
    /// Polling and parsing happen in parallel; the parsed observations
    /// are then applied to the cluster state **in endpoint order** (the
    /// merge concatenates contiguous shards in shard-index order), so the
    /// resulting clusters, prev pointer, and [`PollStats`] are identical
    /// to the sequential [`poll_all`](Observer::poll_all) for any shard
    /// count. Returns the executor stats (`items` counts endpoint polls).
    pub fn poll_all_sharded(&mut self, now: u64, executor: &ParallelExecutor) -> ExecStats {
        let plans = self.sweep_plans(now);
        let run = executor.execute(&PollTask {
            source: &self.source,
            now,
            deobfuscate: self.deobfuscate,
            policy: &self.policy,
            plans: &plans,
        });
        let outcomes = self.absorb_delta(run.outcome);
        self.record_health(now, &plans, &outcomes);
        run.stats
    }

    /// Applies one sweep's merged delta: counters add, observations run
    /// through [`record`](Observer::record) in endpoint order. Returns
    /// the per-endpoint probe outcomes for the health layer.
    fn absorb_delta(&mut self, delta: PollDelta) -> Vec<ProbeOutcome> {
        self.stats.polls += delta.polls;
        self.stats.answered += delta.answered;
        self.stats.offline += delta.offline;
        self.stats.other_errors += delta.other_errors;
        self.stats.parse_failures += delta.parse_failures;
        self.stats.endpoints_down += delta.endpoints_down;
        self.stats.retries += delta.retries;
        self.stats.reconnects += delta.reconnects;
        self.stats.quarantined += delta.quarantined;
        self.stats.sheds += delta.sheds;
        for (bytes, blob) in delta.observations {
            self.record(bytes, blob);
        }
        delta.probe_outcomes
    }

    fn record(&mut self, bytes: Vec<u8>, blob: HashingBlob) {
        if self.current_prev != Some(blob.prev_id) {
            // New height: the driver is expected to have consumed the old
            // cluster via `take_cluster` when the block appeared; if not
            // (e.g. missed block), reset.
            self.current_prev = Some(blob.prev_id);
            self.current_roots.clear();
            self.current_blobs.clear();
        }
        self.current_roots.insert(blob.merkle_root);
        self.current_blobs.insert(bytes);
        self.stats.max_blobs_per_prev = self.stats.max_blobs_per_prev.max(self.current_blobs.len());
    }

    /// The prev pointer currently being observed.
    pub fn current_prev(&self) -> Option<Hash32> {
        self.current_prev
    }

    /// Number of distinct blobs observed for the current prev.
    pub fn current_blob_count(&self) -> usize {
        self.current_blobs.len()
    }

    /// Takes the cluster for `prev` if it is the one being observed —
    /// called by the attribution driver when a block referencing `prev`
    /// is accepted.
    pub fn take_cluster(&mut self, prev: &Hash32) -> Option<BTreeSet<Hash32>> {
        if self.current_prev == Some(*prev) {
            self.current_prev = None;
            self.current_blobs.clear();
            Some(std::mem::take(&mut self.current_roots))
        } else {
            None
        }
    }

    /// Poll statistics.
    pub fn stats(&self) -> &PollStats {
        &self.stats
    }

    /// Appends the observer's complete cross-sweep state to a snapshot
    /// payload: [`PollStats`], the current prev pointer with its root
    /// and blob clusters, and the source's per-endpoint connection-down
    /// flags. [`PollCampaign`] and the §4.2 scenario campaign both
    /// checkpoint through this, so the two formats cannot drift.
    pub fn write_state(&self, w: &mut SnapWriter) {
        let s = &self.stats;
        w.u64(s.polls);
        w.u64(s.answered);
        w.u64(s.offline);
        w.u64(s.other_errors);
        w.u64(s.parse_failures);
        w.u64(s.endpoints_down);
        w.u64(s.retries);
        w.u64(s.reconnects);
        w.u64(s.quarantined);
        w.u64(s.sheds);
        w.len(s.max_blobs_per_prev);
        w.opt(self.current_prev.as_ref(), |w, h| w.hash(h));
        w.len(self.current_roots.len());
        for root in &self.current_roots {
            w.hash(root);
        }
        w.len(self.current_blobs.len());
        for blob in &self.current_blobs {
            w.bytes(blob);
        }
        let down = self.source.connections_down();
        w.len(down.len());
        for d in down {
            w.bool(d);
        }
        // The health layer's breaker/tracker state is cross-sweep state
        // like the down flags: a resumed campaign that dropped it would
        // re-spend retry budget a quarantine had already saved.
        w.bool(self.health.is_some());
        if let Some(h) = &self.health {
            h.write_state(w);
        }
    }

    /// Restores state written by [`write_state`](Observer::write_state)
    /// onto a freshly-initialized observer.
    pub fn read_state(&mut self, r: &mut SnapReader) -> Result<(), CkptError> {
        let stats = PollStats {
            polls: r.u64()?,
            answered: r.u64()?,
            offline: r.u64()?,
            other_errors: r.u64()?,
            parse_failures: r.u64()?,
            endpoints_down: r.u64()?,
            retries: r.u64()?,
            reconnects: r.u64()?,
            quarantined: r.u64()?,
            sheds: r.u64()?,
            max_blobs_per_prev: r.len()?,
        };
        let current_prev = r.opt(|r| r.hash())?;
        let n = r.len()?;
        let mut current_roots = BTreeSet::new();
        for _ in 0..n {
            current_roots.insert(r.hash()?);
        }
        let n = r.len()?;
        let mut current_blobs = BTreeSet::new();
        for _ in 0..n {
            current_blobs.insert(r.bytes()?);
        }
        let n = r.len()?;
        let mut down = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            down.push(r.bool()?);
        }
        if r.bool()? != self.health.is_some() {
            return Err(CkptError::Corrupt("health layer presence mismatch"));
        }
        if let Some(h) = self.health.as_mut() {
            h.read_state(r)?;
        }
        self.stats = stats;
        self.current_prev = current_prev;
        self.current_roots = current_roots;
        self.current_blobs = current_blobs;
        self.source.set_connections_down(&down);
        Ok(())
    }
}

/// One endpoint's in-flight fetch attempt as an executor I/O source.
struct FetchReady<'s, S: AsyncJobSource> {
    source: &'s S,
    endpoint: usize,
    now: u64,
    attempt: u32,
}

impl<S: AsyncJobSource> IoPoll for FetchReady<'_, S> {
    type Out = Result<Job, FetchError>;

    fn poll_io(&mut self) -> Poll<Self::Out> {
        self.source
            .poll_fetch(self.endpoint, self.now, self.attempt)
    }
}

impl<S: AsyncJobSource> Observer<S> {
    /// Polls every endpoint once at virtual time `now` with all fetches
    /// in flight at once on the cooperative executor — one thread,
    /// `in_flight_high_water == min(endpoints, concurrency)`.
    ///
    /// Each endpoint's task replicates the sharded sweep's per-endpoint
    /// body step for step — same retry/backoff/deadline decisions on a
    /// private virtual clock, same jitter stream, same reconnect and
    /// accounting rules — and completions fold in endpoint order, so
    /// clusters and [`PollStats`] are bit-identical to
    /// [`poll_all`](Observer::poll_all) and
    /// [`poll_all_sharded`](Observer::poll_all_sharded) for any
    /// concurrency, including under fault schedules.
    pub fn poll_all_async(&mut self, now: u64, executor: &AsyncExecutor) -> AsyncStats {
        self.poll_all_async_idle(now, executor, &mut YieldBackoff)
    }

    /// [`poll_all_async`](Observer::poll_all_async) with an explicit
    /// [`IdleWait`] — real-socket runs park on a transport's
    /// `TcpParker` instead of spinning between readiness sweeps.
    pub fn poll_all_async_idle(
        &mut self,
        now: u64,
        executor: &AsyncExecutor,
        idle: &mut dyn IdleWait,
    ) -> AsyncStats {
        let plans = self.sweep_plans(now);
        let source = &self.source;
        let policy = &self.policy;
        let deobfuscate = self.deobfuscate;
        let plans_ref: &[ProbePlan] = &plans;
        let run = executor.run_ordered_with(
            0..source.endpoint_count(),
            |ctx, endpoint| async move {
                let mut delta = PollDelta {
                    polls: 1,
                    ..PollDelta::default()
                };
                let plan = plans_ref[endpoint];
                if !plan.admit {
                    // Quarantined: no request, no rng draws, no retry
                    // budget — identical to the sharded sweep's skip.
                    delta.quarantined += 1;
                    delta.probe_outcomes.push(ProbeOutcome::default());
                    return delta;
                }
                let retry_policy = match plan.deadline_ms {
                    Some(d) => policy.retry.tightened(d),
                    None => policy.retry.clone(),
                };
                // Async mirror of `retry()` over the same per-endpoint
                // virtual clock and jitter stream as `run_shard`: the
                // only difference is that the wire wait between request
                // and reply suspends the task instead of the thread.
                let mut clock = VirtualClock::new();
                let mut rng = DetRng::seed(policy.jitter_seed)
                    .derive(&format!("poll.jitter.{endpoint}.{now}"));
                let max_attempts = retry_policy.max_attempts.max(1);
                let mut attempts = 0u32;
                let outcome = loop {
                    let result = match source.begin_fetch(endpoint, now, attempts) {
                        Ok(()) => {
                            ctx.io(FetchReady {
                                source,
                                endpoint,
                                now,
                                attempt: attempts,
                            })
                            .await
                        }
                        Err(e) => Err(e),
                    };
                    if matches!(result, Err(FetchError::Closed)) && source.reconnect(endpoint) {
                        delta.reconnects += 1;
                    }
                    if matches!(result, Err(FetchError::Shed)) {
                        delta.sheds += 1;
                    }
                    attempts += 1;
                    let error = match result {
                        Ok(job) => break Ok(job),
                        Err(e) => e,
                    };
                    if error.error_class() == ErrorClass::Permanent || attempts >= max_attempts {
                        break Err(error);
                    }
                    let backoff = retry_policy.backoff_ms(attempts, &mut rng);
                    if let Some(deadline) = retry_policy.deadline_ms {
                        if clock.now_ms().saturating_add(backoff) > deadline {
                            break Err(error);
                        }
                    }
                    clock.sleep_ms(backoff);
                };
                delta.retries += u64::from(attempts.saturating_sub(1));
                delta.probe_outcomes.push(ProbeOutcome {
                    attempted: true,
                    success: outcome.is_ok(),
                    waited_ms: clock.now_ms(),
                });
                match outcome {
                    Err(FetchError::Offline) => delta.offline += 1,
                    // A final shed is a server-side refusal, not an
                    // endpoint death: the endpoint is up, just loaded.
                    Err(FetchError::Refused) | Err(FetchError::Shed) => delta.other_errors += 1,
                    Err(FetchError::Timeout)
                    | Err(FetchError::Closed)
                    | Err(FetchError::Garbled) => delta.endpoints_down += 1,
                    Ok(job) => {
                        delta.answered += 1;
                        match job.blob_bytes() {
                            Err(_) => delta.parse_failures += 1,
                            Ok(mut bytes) => {
                                if deobfuscate {
                                    obfuscation::xor_blob(&mut bytes);
                                }
                                match HashingBlob::parse(&bytes) {
                                    Err(_) => delta.parse_failures += 1,
                                    Ok(blob) => delta.observations.push((bytes, blob)),
                                }
                            }
                        }
                    }
                }
                delta
            },
            PollDelta::default(),
            |acc: &mut PollDelta, mut next: PollDelta| {
                acc.polls += next.polls;
                acc.answered += next.answered;
                acc.offline += next.offline;
                acc.other_errors += next.other_errors;
                acc.parse_failures += next.parse_failures;
                acc.endpoints_down += next.endpoints_down;
                acc.retries += next.retries;
                acc.reconnects += next.reconnects;
                acc.quarantined += next.quarantined;
                acc.sheds += next.sheds;
                acc.observations.append(&mut next.observations);
                acc.probe_outcomes.append(&mut next.probe_outcomes);
                ControlFlow::Continue(())
            },
            idle,
        );
        let outcomes = self.absorb_delta(run.outcome);
        self.record_health(now, &plans, &outcomes);
        run.stats
    }
}

/// Partial outcome of polling one contiguous endpoint range: additive
/// counters plus the parsed observations in endpoint order.
#[derive(Default)]
struct PollDelta {
    polls: u64,
    answered: u64,
    offline: u64,
    other_errors: u64,
    parse_failures: u64,
    endpoints_down: u64,
    retries: u64,
    reconnects: u64,
    quarantined: u64,
    sheds: u64,
    observations: Vec<(Vec<u8>, HashingBlob)>,
    /// One outcome per polled endpoint, in endpoint order (the merge
    /// concatenates contiguous shards), fed to the health layer's
    /// record phase after the merge.
    probe_outcomes: Vec<ProbeOutcome>,
}

/// One poll sweep as a [`ShardedTask`] over the endpoint index space.
/// Cluster state is *not* touched here — `record` has order-dependent
/// reset semantics, so the driver applies observations after the merge.
struct PollTask<'a, S: JobSource> {
    source: &'a S,
    now: u64,
    deobfuscate: bool,
    policy: &'a PollPolicy,
    /// Per-endpoint health plans, computed before the fan-out.
    plans: &'a [ProbePlan],
}

impl<S: JobSource> ShardedTask for PollTask<'_, S> {
    type Output = PollDelta;

    fn len(&self) -> usize {
        self.source.endpoint_count()
    }

    fn run_shard(&self, range: Range<usize>, progress: &AtomicU64) -> PollDelta {
        let mut delta = PollDelta::default();
        for endpoint in range {
            progress.fetch_add(1, Ordering::Relaxed);
            delta.polls += 1;
            let plan = self.plans[endpoint];
            if !plan.admit {
                // Quarantined by the circuit breaker: no request, no
                // rng draws, no retry budget — a counted gap.
                delta.quarantined += 1;
                delta.probe_outcomes.push(ProbeOutcome::default());
                continue;
            }
            let retry_policy = match plan.deadline_ms {
                Some(d) => self.policy.retry.tightened(d),
                None => self.policy.retry.clone(),
            };
            let mut clock = VirtualClock::new();
            let mut rng = DetRng::seed(self.policy.jitter_seed)
                .derive(&format!("poll.jitter.{endpoint}.{}", self.now));
            let mut reconnects = 0u64;
            let mut sheds = 0u64;
            let outcome = retry(&retry_policy, &mut clock, &mut rng, |attempt| {
                let r = self.source.fetch_job(endpoint, self.now, attempt);
                // Reconnect eagerly on every teardown, even a final one,
                // so the next sweep starts on a fresh connection.
                if matches!(r, Err(FetchError::Closed)) && self.source.reconnect(endpoint) {
                    reconnects += 1;
                }
                if matches!(r, Err(FetchError::Shed)) {
                    sheds += 1;
                }
                r
            });
            delta.retries += u64::from(outcome.retries());
            delta.reconnects += reconnects;
            delta.sheds += sheds;
            delta.probe_outcomes.push(ProbeOutcome {
                attempted: true,
                success: outcome.result.is_ok(),
                waited_ms: outcome.waited_ms,
            });
            match outcome.result {
                Err(e) => match e.error {
                    FetchError::Offline => delta.offline += 1,
                    // A final shed is a server-side refusal, not an
                    // endpoint death: the endpoint is up, just loaded.
                    FetchError::Refused | FetchError::Shed => delta.other_errors += 1,
                    // The transport never recovered within the policy:
                    // the endpoint is down for this sweep.
                    FetchError::Timeout | FetchError::Closed | FetchError::Garbled => {
                        delta.endpoints_down += 1
                    }
                },
                Ok(job) => {
                    delta.answered += 1;
                    let Ok(mut bytes) = job.blob_bytes() else {
                        delta.parse_failures += 1;
                        continue;
                    };
                    if self.deobfuscate {
                        obfuscation::xor_blob(&mut bytes);
                    }
                    let Ok(blob) = HashingBlob::parse(&bytes) else {
                        delta.parse_failures += 1;
                        continue;
                    };
                    delta.observations.push((bytes, blob));
                }
            }
        }
        delta
    }

    fn merge(&self, acc: &mut PollDelta, mut next: PollDelta) {
        acc.polls += next.polls;
        acc.answered += next.answered;
        acc.offline += next.offline;
        acc.other_errors += next.other_errors;
        acc.parse_failures += next.parse_failures;
        acc.endpoints_down += next.endpoints_down;
        acc.retries += next.retries;
        acc.reconnects += next.reconnects;
        acc.quarantined += next.quarantined;
        acc.sheds += next.sheds;
        acc.observations.append(&mut next.observations);
        acc.probe_outcomes.append(&mut next.probe_outcomes);
    }
}

/// The §4.2 poll loop as a killable, resumable
/// [`Campaign`]: one item = one whole sweep (every endpoint polled once
/// at virtual time `start_ms + tick × interval_ms`).
///
/// The snapshot is the observer's complete cross-sweep state — the
/// tick cursor, [`PollStats`], the current prev pointer with its root
/// and blob clusters, and the source's per-endpoint connection-down
/// flags (an endpoint left down at the end of one sweep fails `Closed`
/// at the start of the next, so dropping the flags would skew
/// `retries`/`reconnects` after a resume). Because fault schedules and
/// retry jitter are keyed by `(endpoint, now)` and sweeps fold in
/// endpoint order, a killed-and-resumed run reproduces the
/// uninterrupted observer bit for bit on every backend.
///
/// The poller has no streaming pipeline backend;
/// [`Backend::Streaming`] maps to the sharded sweep with the same
/// worker count.
pub struct PollCampaign<S: AsyncJobSource> {
    observer: Observer<S>,
    start_ms: u64,
    interval_ms: u64,
    ticks: u64,
    next_tick: u64,
    backend: Backend,
}

impl<S: AsyncJobSource> PollCampaign<S> {
    /// A campaign of `ticks` sweeps at `interval_ms` starting at
    /// `start_ms`, over a freshly-initialized observer.
    pub fn new(
        observer: Observer<S>,
        start_ms: u64,
        interval_ms: u64,
        ticks: u64,
        backend: Backend,
    ) -> PollCampaign<S> {
        PollCampaign {
            observer,
            start_ms,
            interval_ms,
            ticks,
            next_tick: 0,
            backend,
        }
    }

    /// The observer being driven.
    pub fn observer(&self) -> &Observer<S> {
        &self.observer
    }
}

impl<S: AsyncJobSource> Checkpointable for PollCampaign<S> {
    fn progress_key(&self) -> u64 {
        self.next_tick
    }

    fn snapshot(&self) -> Snapshot {
        let mut w = SnapWriter::new();
        w.u64(self.next_tick);
        self.observer.write_state(&mut w);
        Snapshot::new(self.next_tick, w.finish())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), CkptError> {
        let mut r = SnapReader::new(&snapshot.payload);
        let next_tick = r.u64()?;
        if next_tick > self.ticks {
            return Err(CkptError::Corrupt("tick cursor beyond campaign"));
        }
        self.observer.read_state(&mut r)?;
        r.expect_end()?;
        self.next_tick = next_tick;
        Ok(())
    }
}

impl<S: AsyncJobSource> Campaign for PollCampaign<S> {
    type Output = Observer<S>;

    fn is_done(&self) -> bool {
        self.next_tick >= self.ticks
    }

    fn run_items(&mut self, budget: u64, heartbeat: &AtomicU64) {
        for _ in 0..budget {
            if self.is_done() {
                return;
            }
            let now = self.start_ms + self.next_tick * self.interval_ms;
            match self.backend {
                Backend::Sequential => self.observer.poll_all(now),
                Backend::Sharded(shards) => {
                    self.observer
                        .poll_all_sharded(now, &ParallelExecutor::new(shards));
                }
                // No streaming sweep exists; the sharded one is the
                // closest parallel shape (documented above).
                Backend::Streaming { workers, .. } => {
                    self.observer
                        .poll_all_sharded(now, &ParallelExecutor::new(workers));
                }
                Backend::Async { concurrency } => {
                    self.observer
                        .poll_all_async(now, &AsyncExecutor::new(concurrency));
                }
            }
            heartbeat.fetch_add(1, Ordering::Relaxed);
            self.next_tick += 1;
        }
    }

    fn virtual_now_ms(&self) -> u64 {
        self.start_ms + self.next_tick * self.interval_ms
    }

    fn finish(self) -> Observer<S> {
        self.observer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_chain::netsim::TipInfo;
    use minedig_chain::tx::Transaction;
    use minedig_pool::pool::PoolConfig;
    use minedig_primitives::fault::FaultConfig;

    fn pool_with_tip() -> Pool {
        let pool = Pool::new(PoolConfig::default());
        pool.announce_tip(&TipInfo {
            height: 10,
            prev_id: Hash32::keccak(b"prev-10"),
            prev_timestamp: 1_000,
            reward: 1_000_000,
            difficulty: 100,
            mempool: vec![Transaction::transfer(Hash32::keccak(b"m"))],
        });
        pool
    }

    #[test]
    fn observes_at_most_128_blobs_per_height() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        // Poll across the whole template-version window.
        for t in (1_000..1_150).step_by(5) {
            obs.poll_all(t);
        }
        assert_eq!(obs.stats().max_blobs_per_prev, 128);
        assert_eq!(obs.current_blob_count(), 128);
        // 16 backends × 8 versions = 128 distinct roots as well.
        assert_eq!(obs.current_roots.len(), 128);
    }

    #[test]
    fn single_poll_sees_one_blob_per_backend() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        // 32 endpoints share 16 backends → 16 distinct blobs.
        assert_eq!(obs.current_blob_count(), 16);
    }

    #[test]
    fn deobfuscation_recovers_true_prev() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        assert_eq!(obs.current_prev(), Some(Hash32::keccak(b"prev-10")));
    }

    #[test]
    fn without_deobfuscation_prev_is_garbage() {
        // The naive observer (before discovering the XOR) clusters on a
        // corrupted prev pointer.
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, false);
        obs.poll_all(1_000);
        assert_ne!(obs.current_prev(), Some(Hash32::keccak(b"prev-10")));
    }

    #[test]
    fn outage_is_counted() {
        let pool = pool_with_tip();
        pool.set_online(false);
        let mut obs = Observer::new(pool.clone(), true);
        obs.poll_all(1_000);
        assert_eq!(obs.stats().offline, 32);
        assert_eq!(obs.stats().answered, 0);
        pool.set_online(true);
        obs.poll_all(1_020);
        assert_eq!(obs.stats().answered, 32);
    }

    #[test]
    fn no_tip_is_counted_not_swallowed() {
        // Regression: pre-fix, `Err(_) => {}` dropped NoTip/BadEndpoint
        // silently, so a pool with no announced tip looked identical to
        // one answering normally (polls ≠ answered + offline + …).
        let pool = Pool::new(PoolConfig::default());
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        let s = obs.stats();
        assert_eq!(s.other_errors, 32);
        assert_eq!(s.answered, 0);
        assert_eq!(s.offline, 0);
        assert_eq!(s.polls, s.answered + s.offline + s.other_errors);
    }

    #[test]
    fn sharded_poll_matches_sequential() {
        for shards in [1, 2, 3, 5, 16, 64] {
            let pool = pool_with_tip();
            let mut seq = Observer::new(pool.clone(), true);
            let mut par = Observer::new(pool, true);
            let executor = ParallelExecutor::new(shards);
            for t in (1_000..1_150).step_by(5) {
                seq.poll_all(t);
                let stats = par.poll_all_sharded(t, &executor);
                assert_eq!(stats.shards, shards);
                assert_eq!(stats.items, 32);
            }
            assert_eq!(par.current_prev(), seq.current_prev(), "shards={shards}");
            assert_eq!(par.current_roots, seq.current_roots, "shards={shards}");
            assert_eq!(par.current_blobs, seq.current_blobs, "shards={shards}");
            let (ss, ps) = (seq.stats(), par.stats());
            assert_eq!(ps.polls, ss.polls, "shards={shards}");
            assert_eq!(ps.answered, ss.answered, "shards={shards}");
            assert_eq!(ps.offline, ss.offline, "shards={shards}");
            assert_eq!(ps.other_errors, ss.other_errors, "shards={shards}");
            assert_eq!(ps.parse_failures, ss.parse_failures, "shards={shards}");
            assert_eq!(
                ps.max_blobs_per_prev, ss.max_blobs_per_prev,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_poll_counts_outages_identically() {
        let pool = pool_with_tip();
        pool.set_online(false);
        let mut obs = Observer::new(pool.clone(), true);
        obs.poll_all_sharded(1_000, &ParallelExecutor::new(4));
        assert_eq!(obs.stats().offline, 32);
        pool.set_online(true);
        obs.poll_all_sharded(1_020, &ParallelExecutor::new(4));
        assert_eq!(obs.stats().answered, 32);
    }

    #[test]
    fn transient_faults_with_retries_match_the_clean_run() {
        let times: Vec<u64> = (1_000..1_150).step_by(5).collect();
        let pool = pool_with_tip();
        let mut clean = Observer::new(pool.clone(), true);
        for &t in &times {
            clean.poll_all(t);
        }

        let plan = FaultPlan::transient_only(21, 0.6);
        let source = FaultyJobSource::new(pool, plan.clone());
        let mut obs = Observer::with_source(source, true, PollPolicy::outlasting(&plan));
        for &t in &times {
            obs.poll_all(t);
        }

        assert!(obs.stats().retries > 0, "p=0.6 must force retries");
        assert_eq!(obs.current_prev(), clean.current_prev());
        assert_eq!(obs.current_roots, clean.current_roots);
        assert_eq!(obs.current_blobs, clean.current_blobs);
        let (c, f) = (clean.stats().clone(), obs.stats());
        assert_eq!(f.polls, c.polls);
        assert_eq!(f.answered, c.answered);
        assert_eq!(f.endpoints_down, 0, "clearing faults never exhaust");
        assert_eq!(f.max_blobs_per_prev, c.max_blobs_per_prev);
        assert!(f.balanced());
    }

    #[test]
    fn permanent_faults_account_into_endpoints_down() {
        let pool = pool_with_tip();
        // Exclude Delay (it succeeds, just late) so every faulty
        // endpoint genuinely fails.
        let plan = FaultPlan::with_config(
            9,
            FaultConfig {
                fault_prob: 1.0,
                permanent_prob: 1.0,
                kind_weights: [1.0, 0.0, 1.0, 1.0, 1.0],
                ..FaultConfig::default()
            },
        );
        let source = FaultyJobSource::new(pool, plan);
        let mut obs = Observer::with_source(source, true, PollPolicy::default());
        obs.poll_all(1_000);
        let s = obs.stats();
        assert_eq!(s.endpoints_down, 32, "every endpoint exhausts its budget");
        assert_eq!(s.answered, 0);
        assert!(s.retries > 0);
        assert!(s.balanced());
    }

    #[test]
    fn reconnects_are_counted_after_teardowns() {
        let pool = pool_with_tip();
        let plan = FaultPlan::with_config(
            5,
            FaultConfig {
                fault_prob: 1.0,
                permanent_prob: 0.0,
                // Disconnect only.
                kind_weights: [0.0, 0.0, 1.0, 0.0, 0.0],
                ..FaultConfig::default()
            },
        );
        let source = FaultyJobSource::new(pool, plan.clone());
        let mut obs = Observer::with_source(source, true, PollPolicy::outlasting(&plan));
        obs.poll_all(1_000);
        let s = obs.stats();
        assert_eq!(s.answered, 32, "faults clear within the budget");
        assert!(s.reconnects > 0, "teardowns must have forced reconnects");
        assert!(s.balanced());
    }

    #[test]
    fn sharded_poll_matches_sequential_under_faults() {
        let plan = FaultPlan::with_config(
            13,
            FaultConfig {
                fault_prob: 0.5,
                permanent_prob: 0.3,
                ..FaultConfig::default()
            },
        );
        for shards in [1, 2, 3, 5, 16] {
            let pool = pool_with_tip();
            let mut seq = Observer::with_source(
                FaultyJobSource::new(pool.clone(), plan.clone()),
                true,
                PollPolicy::default(),
            );
            let mut par = Observer::with_source(
                FaultyJobSource::new(pool, plan.clone()),
                true,
                PollPolicy::default(),
            );
            let executor = ParallelExecutor::new(shards);
            for t in (1_000..1_100).step_by(5) {
                seq.poll_all(t);
                par.poll_all_sharded(t, &executor);
            }
            assert_eq!(par.current_prev(), seq.current_prev(), "shards={shards}");
            assert_eq!(par.current_roots, seq.current_roots, "shards={shards}");
            assert_eq!(par.current_blobs, seq.current_blobs, "shards={shards}");
            let (ss, ps) = (seq.stats(), par.stats());
            assert_eq!(ps.polls, ss.polls, "shards={shards}");
            assert_eq!(ps.answered, ss.answered, "shards={shards}");
            assert_eq!(ps.endpoints_down, ss.endpoints_down, "shards={shards}");
            assert_eq!(ps.retries, ss.retries, "shards={shards}");
            assert_eq!(ps.reconnects, ss.reconnects, "shards={shards}");
            assert!(ps.balanced(), "shards={shards}");
        }
    }

    #[test]
    fn async_poll_matches_sequential() {
        for concurrency in [1usize, 8, 256] {
            let pool = pool_with_tip();
            let mut seq = Observer::new(pool.clone(), true);
            let mut asy = Observer::new(pool, true);
            let executor = AsyncExecutor::new(concurrency);
            for t in (1_000..1_150).step_by(5) {
                seq.poll_all(t);
                let stats = asy.poll_all_async(t, &executor);
                assert_eq!(stats.tasks, 32, "concurrency={concurrency}");
                // Every endpoint's fetch is genuinely in flight at once
                // (up to the budget) on the single executor thread.
                assert_eq!(
                    stats.in_flight_high_water,
                    32.min(concurrency) as u64,
                    "concurrency={concurrency}"
                );
            }
            assert_eq!(asy.current_prev(), seq.current_prev(), "c={concurrency}");
            assert_eq!(asy.current_roots, seq.current_roots, "c={concurrency}");
            assert_eq!(asy.current_blobs, seq.current_blobs, "c={concurrency}");
            let (ss, als) = (seq.stats(), asy.stats());
            assert_eq!(als.polls, ss.polls, "c={concurrency}");
            assert_eq!(als.answered, ss.answered, "c={concurrency}");
            assert_eq!(als.max_blobs_per_prev, ss.max_blobs_per_prev);
            assert!(als.balanced());
        }
    }

    #[test]
    fn async_poll_matches_sequential_under_faults() {
        let plan = FaultPlan::with_config(
            13,
            FaultConfig {
                fault_prob: 0.5,
                permanent_prob: 0.3,
                ..FaultConfig::default()
            },
        );
        for concurrency in [1usize, 8, 256] {
            let pool = pool_with_tip();
            let mut seq = Observer::with_source(
                FaultyJobSource::new(pool.clone(), plan.clone()),
                true,
                PollPolicy::default(),
            );
            let mut asy = Observer::with_source(
                FaultyJobSource::new(pool, plan.clone()),
                true,
                PollPolicy::default(),
            );
            let executor = AsyncExecutor::new(concurrency);
            for t in (1_000..1_100).step_by(5) {
                seq.poll_all(t);
                asy.poll_all_async(t, &executor);
            }
            assert_eq!(asy.current_prev(), seq.current_prev(), "c={concurrency}");
            assert_eq!(asy.current_roots, seq.current_roots, "c={concurrency}");
            assert_eq!(asy.current_blobs, seq.current_blobs, "c={concurrency}");
            let (ss, als) = (seq.stats(), asy.stats());
            assert_eq!(als.polls, ss.polls, "c={concurrency}");
            assert_eq!(als.answered, ss.answered, "c={concurrency}");
            assert_eq!(als.endpoints_down, ss.endpoints_down, "c={concurrency}");
            assert_eq!(als.retries, ss.retries, "c={concurrency}");
            assert_eq!(als.reconnects, ss.reconnects, "c={concurrency}");
            assert!(als.balanced(), "c={concurrency}");
        }
    }

    fn wire_over_channels(pool: &Pool) -> WireJobSource<minedig_net::transport::ChannelTransport> {
        let pool = pool.clone();
        WireJobSource::new(32, Duration::from_secs(5), move |endpoint| {
            let (client, mut server) = minedig_net::transport::channel_pair();
            let p = pool.clone();
            // Serve threads exit when the client side drops. The session
            // clock is irrelevant: peeks carry their own timestamp.
            std::thread::spawn(move || p.serve(&mut server, endpoint, || 0));
            Some(client)
        })
    }

    #[test]
    fn wire_source_matches_the_in_process_source() {
        let pool = pool_with_tip();
        let mut direct = Observer::new(pool.clone(), true);
        let mut wired =
            Observer::with_source(wire_over_channels(&pool), true, PollPolicy::default());
        for t in (1_000..1_100).step_by(5) {
            direct.poll_all(t);
            wired.poll_all(t);
        }
        assert_eq!(wired.current_prev(), direct.current_prev());
        assert_eq!(wired.current_roots, direct.current_roots);
        assert_eq!(wired.current_blobs, direct.current_blobs);
        assert_eq!(wired.stats().answered, direct.stats().answered);
        assert_eq!(wired.stats().polls, direct.stats().polls);
        assert!(wired.stats().balanced());
    }

    #[test]
    fn wire_source_classifies_semantic_errors_like_the_pool() {
        // No tip announced → every peek refused; an outage → offline.
        let pool = Pool::new(PoolConfig::default());
        let mut wired =
            Observer::with_source(wire_over_channels(&pool), true, PollPolicy::default());
        wired.poll_all(1_000);
        assert_eq!(wired.stats().other_errors, 32);
        pool.set_online(false);
        wired.poll_all(1_020);
        assert_eq!(wired.stats().offline, 32);
        assert!(wired.stats().balanced());
    }

    #[test]
    fn async_wire_poll_matches_the_blocking_wire_poll() {
        let pool = pool_with_tip();
        let mut blocking =
            Observer::with_source(wire_over_channels(&pool), true, PollPolicy::default());
        let mut asynced =
            Observer::with_source(wire_over_channels(&pool), true, PollPolicy::default());
        let executor = AsyncExecutor::new(64);
        for t in (1_000..1_100).step_by(5) {
            blocking.poll_all(t);
            let stats = asynced.poll_all_async(t, &executor);
            assert_eq!(stats.in_flight_high_water, 32);
        }
        assert_eq!(asynced.current_prev(), blocking.current_prev());
        assert_eq!(asynced.current_roots, blocking.current_roots);
        assert_eq!(asynced.current_blobs, blocking.current_blobs);
        assert_eq!(asynced.stats().answered, blocking.stats().answered);
        assert!(asynced.stats().balanced());
    }

    #[test]
    fn take_cluster_resets_state() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool, true);
        obs.poll_all(1_000);
        let prev = Hash32::keccak(b"prev-10");
        let cluster = obs.take_cluster(&prev).unwrap();
        assert_eq!(cluster.len(), 16);
        assert_eq!(obs.current_prev(), None);
        assert!(obs.take_cluster(&prev).is_none());
    }

    #[test]
    fn new_height_resets_cluster() {
        let pool = pool_with_tip();
        let mut obs = Observer::new(pool.clone(), true);
        obs.poll_all(1_000);
        pool.announce_tip(&TipInfo {
            height: 11,
            prev_id: Hash32::keccak(b"prev-11"),
            prev_timestamp: 1_120,
            reward: 1_000_000,
            difficulty: 100,
            mempool: vec![],
        });
        obs.poll_all(1_120);
        assert_eq!(obs.current_prev(), Some(Hash32::keccak(b"prev-11")));
        assert_eq!(obs.current_blob_count(), 16);
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("minedig-poll-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_observer_eq<A: JobSource, B: JobSource>(a: &Observer<A>, b: &Observer<B>, ctx: &str) {
        assert_eq!(a.stats, b.stats, "{ctx}");
        assert_eq!(a.current_prev, b.current_prev, "{ctx}");
        assert_eq!(a.current_roots, b.current_roots, "{ctx}");
        assert_eq!(a.current_blobs, b.current_blobs, "{ctx}");
    }

    const CAMPAIGN_BACKENDS: [Backend; 4] = [
        Backend::Sequential,
        Backend::Sharded(3),
        Backend::Streaming {
            workers: 2,
            capacity: 8,
        },
        Backend::Async { concurrency: 8 },
    ];

    #[test]
    fn supervised_poll_with_kills_matches_uninterrupted_on_every_backend() {
        use minedig_primitives::ckpt::SnapshotStore;
        use minedig_primitives::supervise::{CrashPolicy, Supervisor};
        let pool = pool_with_tip();
        let mut reference = Observer::new(pool.clone(), true);
        for tick in 0..24u64 {
            reference.poll_all(1_000 + tick * 5);
        }
        for backend in CAMPAIGN_BACKENDS {
            let dir = ckpt_dir(&format!("clean-{}", backend.label()));
            let store = SnapshotStore::open(&dir).unwrap();
            let sup = Supervisor::new(CrashPolicy {
                ckpt_every_items: 4,
                ..CrashPolicy::default()
            })
            .with_kills(vec![2, 9, 17]);
            let run = sup
                .run(
                    &store,
                    "poll",
                    || PollCampaign::new(Observer::new(pool.clone(), true), 1_000, 5, 24, backend),
                    false,
                )
                .unwrap();
            assert_observer_eq(&run.output, &reference, backend.label());
            assert!(run.report.balanced(), "{:?}", run.report);
            assert_eq!(run.report.crashes, 3, "backend={}", backend.label());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn supervised_poll_restores_connection_down_flags_under_faults() {
        use minedig_primitives::ckpt::SnapshotStore;
        use minedig_primitives::supervise::{CrashPolicy, Supervisor};
        // Mixed plan with disconnects and permanent faults: endpoints
        // can be left down across sweep boundaries, which is exactly
        // the state the snapshot must carry for retries/reconnects to
        // balance after a resume.
        let plan = FaultPlan::with_config(
            33,
            FaultConfig {
                fault_prob: 0.5,
                permanent_prob: 0.5,
                ..FaultConfig::default()
            },
        );
        let pool = pool_with_tip();
        let policy = PollPolicy {
            retry: RetryPolicy::attempts(3),
            jitter_seed: plan.seed(),
        };
        let mut reference = Observer::with_source(
            FaultyJobSource::new(pool.clone(), plan.clone()),
            true,
            policy.clone(),
        );
        for tick in 0..24u64 {
            reference.poll_all(1_000 + tick * 5);
        }
        assert!(reference.stats.reconnects > 0, "plan must tear connections");
        for backend in CAMPAIGN_BACKENDS {
            let dir = ckpt_dir(&format!("faulty-{}", backend.label()));
            let store = SnapshotStore::open(&dir).unwrap();
            let sup = Supervisor::new(CrashPolicy {
                ckpt_every_items: 4,
                ..CrashPolicy::default()
            })
            .with_kills(vec![5, 13]);
            let run = sup
                .run(
                    &store,
                    "poll-faulty",
                    || {
                        PollCampaign::new(
                            Observer::with_source(
                                FaultyJobSource::new(pool.clone(), plan.clone()),
                                true,
                                policy.clone(),
                            ),
                            1_000,
                            5,
                            24,
                            backend,
                        )
                    },
                    false,
                )
                .unwrap();
            assert_observer_eq(&run.output, &reference, backend.label());
            assert!(run.output.stats.balanced(), "{:?}", run.output.stats);
            assert!(run.report.balanced(), "{:?}", run.report);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// A source whose `dead` endpoint times out on every attempt —
    /// the permanently-dead-endpoint scenario the breaker exists for.
    struct DeadEndpoint<S: JobSource> {
        inner: S,
        dead: usize,
    }

    impl<S: JobSource> JobSource for DeadEndpoint<S> {
        fn endpoint_count(&self) -> usize {
            self.inner.endpoint_count()
        }

        fn fetch_job(&self, endpoint: usize, now: u64, attempt: u32) -> Result<Job, FetchError> {
            if endpoint == self.dead {
                Err(FetchError::Timeout)
            } else {
                self.inner.fetch_job(endpoint, now, attempt)
            }
        }
    }

    impl<S: AsyncJobSource> AsyncJobSource for DeadEndpoint<S> {
        fn begin_fetch(&self, endpoint: usize, now: u64, attempt: u32) -> Result<(), FetchError> {
            if endpoint == self.dead {
                Err(FetchError::Timeout)
            } else {
                self.inner.begin_fetch(endpoint, now, attempt)
            }
        }

        fn poll_fetch(
            &self,
            endpoint: usize,
            now: u64,
            attempt: u32,
        ) -> Poll<Result<Job, FetchError>> {
            self.inner.poll_fetch(endpoint, now, attempt)
        }
    }

    #[test]
    fn health_layer_is_bit_identical_without_faults() {
        use minedig_primitives::health::HedgeConfig;
        let times: Vec<u64> = (1_000..1_150).step_by(5).collect();
        let pool = pool_with_tip();
        let mut off = Observer::new(pool.clone(), true);
        for &t in &times {
            off.poll_all(t);
        }
        // Aggressive adaptive/hedge settings: warmed-up deadlines bind
        // tightly and hedging starts early — none of it may perturb the
        // fault-free result on any backend.
        let cfg = HealthConfig {
            seed: 0x4ea1,
            adaptive: minedig_primitives::health::AdaptiveConfig {
                warmup: 1,
                multiplier: 1.0,
                floor_ms: 0,
                ..Default::default()
            },
            hedge: HedgeConfig {
                min_tracked: 2,
                slow_fraction: 0.3,
                ..HedgeConfig::default()
            },
            ..HealthConfig::default()
        };
        let mut seq = Observer::new(pool.clone(), true).with_health(cfg.clone());
        let mut par = Observer::new(pool.clone(), true).with_health(cfg.clone());
        let mut asy = Observer::new(pool, true).with_health(cfg);
        let sharded = ParallelExecutor::new(4);
        let aexec = AsyncExecutor::new(8);
        for &t in &times {
            seq.poll_all(t);
            par.poll_all_sharded(t, &sharded);
            asy.poll_all_async(t, &aexec);
        }
        for (on, label) in [(&seq, "seq"), (&par, "sharded"), (&asy, "async")] {
            assert_eq!(on.stats, off.stats, "{label}");
            assert_eq!(on.current_prev, off.current_prev, "{label}");
            assert_eq!(on.current_roots, off.current_roots, "{label}");
            assert_eq!(on.current_blobs, off.current_blobs, "{label}");
            let hs = on.health_stats().unwrap();
            assert!(hs.balanced(), "{label}: {hs:?}");
            assert_eq!(hs.breaker.trips, 0, "{label}: fault-free never trips");
            assert!(hs.hedges > 0, "{label}: hedging must have activated");
        }
        assert_eq!(seq.health_stats(), asy.health_stats());
        assert_eq!(seq.health_stats(), par.health_stats());
    }

    #[test]
    fn dead_endpoint_quarantine_bounds_retry_budget() {
        let times: Vec<u64> = (1_000..2_000).step_by(5).collect(); // 200 sweeps
        let dead = 7usize;
        let make = || DeadEndpoint {
            inner: pool_with_tip(),
            dead,
        };
        // Without the breaker every sweep pays the full retry budget
        // against the dead endpoint.
        let mut off = Observer::with_source(make(), true, PollPolicy::default());
        for &t in &times {
            off.poll_all(t);
        }
        assert_eq!(off.stats.retries, times.len() as u64 * 3);
        assert_eq!(off.stats.quarantined, 0);

        let cfg = HealthConfig::default(); // open_for 60(+≤15 jitter)
        let mut seq =
            Observer::with_source(make(), true, PollPolicy::default()).with_health(cfg.clone());
        let mut par =
            Observer::with_source(make(), true, PollPolicy::default()).with_health(cfg.clone());
        let mut asy =
            Observer::with_source(make(), true, PollPolicy::default()).with_health(cfg.clone());
        let sharded = ParallelExecutor::new(3);
        let aexec = AsyncExecutor::new(16);
        for &t in &times {
            seq.poll_all(t);
            par.poll_all_sharded(t, &sharded);
            asy.poll_all_async(t, &aexec);
        }
        // The acceptance bound: the window fill to trip, then at most
        // one probe per open interval across the 1000-unit span.
        let span = times.last().unwrap() - times.first().unwrap();
        let max_attempts = cfg.breaker.min_samples as u64 + span / cfg.breaker.open_for + 2;
        let s = seq.stats();
        assert!(s.balanced(), "{s:?}");
        let attempts = times.len() as u64 - s.quarantined;
        assert!(
            attempts <= max_attempts,
            "attempts {attempts} > bound {max_attempts}"
        );
        assert_eq!(s.retries, attempts * 3, "only probed sweeps spend retries");
        assert_eq!(
            s.answered,
            31 * times.len() as u64,
            "healthy endpoints poll"
        );
        let hs = seq.health_stats().unwrap();
        assert!(hs.balanced(), "{hs:?}");
        assert_eq!(hs.breaker.quarantined, s.quarantined);
        // All backends agree bit for bit, quarantine decisions included.
        assert_eq!(par.stats, seq.stats);
        assert_eq!(asy.stats, seq.stats);
        assert_eq!(par.health_stats(), seq.health_stats());
        assert_eq!(asy.health_stats(), seq.health_stats());
        assert_eq!(par.current_roots, seq.current_roots);
        assert_eq!(asy.current_roots, seq.current_roots);
    }

    #[test]
    fn health_backends_match_under_faults() {
        let plan = FaultPlan::with_config(
            13,
            FaultConfig {
                fault_prob: 0.5,
                permanent_prob: 0.3,
                ..FaultConfig::default()
            },
        );
        // Short open windows so breakers trip *and* probe within the run.
        let cfg = HealthConfig {
            breaker: minedig_primitives::health::BreakerConfig {
                open_for: 20,
                probe_jitter: 7,
                ..Default::default()
            },
            ..HealthConfig::default()
        };
        let pool = pool_with_tip();
        let make = || {
            Observer::with_source(
                FaultyJobSource::new(pool.clone(), plan.clone()),
                true,
                PollPolicy::default(),
            )
            .with_health(cfg.clone())
        };
        let mut seq = make();
        let mut par = make();
        let mut asy = make();
        let sharded = ParallelExecutor::new(5);
        let aexec = AsyncExecutor::new(8);
        for t in (1_000..1_400).step_by(5) {
            seq.poll_all(t);
            par.poll_all_sharded(t, &sharded);
            asy.poll_all_async(t, &aexec);
        }
        assert!(seq.stats.quarantined > 0, "faults must trip breakers");
        assert!(seq.stats.balanced(), "{:?}", seq.stats);
        assert!(seq.health_stats().unwrap().balanced());
        assert_eq!(par.stats, seq.stats);
        assert_eq!(asy.stats, seq.stats);
        assert_eq!(par.health_stats(), seq.health_stats());
        assert_eq!(asy.health_stats(), seq.health_stats());
        assert_eq!(par.current_roots, seq.current_roots);
        assert_eq!(asy.current_roots, seq.current_roots);
        assert_eq!(par.current_blobs, seq.current_blobs);
        assert_eq!(asy.current_blobs, seq.current_blobs);
    }

    #[test]
    fn supervised_poll_with_health_restores_breaker_state() {
        use minedig_primitives::ckpt::SnapshotStore;
        use minedig_primitives::supervise::{CrashPolicy, Supervisor};
        let plan = FaultPlan::with_config(
            33,
            FaultConfig {
                fault_prob: 0.8,
                permanent_prob: 0.8,
                ..FaultConfig::default()
            },
        );
        let cfg = HealthConfig {
            breaker: minedig_primitives::health::BreakerConfig {
                open_for: 20,
                probe_jitter: 5,
                ..Default::default()
            },
            ..HealthConfig::default()
        };
        let pool = pool_with_tip();
        let policy = PollPolicy {
            retry: RetryPolicy::attempts(3),
            jitter_seed: plan.seed(),
        };
        let make = || {
            Observer::with_source(
                FaultyJobSource::new(pool.clone(), plan.clone()),
                true,
                policy.clone(),
            )
            .with_health(cfg.clone())
        };
        let mut reference = make();
        for tick in 0..24u64 {
            reference.poll_all(1_000 + tick * 5);
        }
        assert!(
            reference.stats.quarantined > 0,
            "plan must trip breakers mid-run: {:?}",
            reference.stats
        );
        for backend in CAMPAIGN_BACKENDS {
            let dir = ckpt_dir(&format!("health-{}", backend.label()));
            let store = SnapshotStore::open(&dir).unwrap();
            let sup = Supervisor::new(CrashPolicy {
                ckpt_every_items: 4,
                ..CrashPolicy::default()
            })
            .with_kills(vec![5, 13]);
            let run = sup
                .run(
                    &store,
                    "poll-health",
                    || PollCampaign::new(make(), 1_000, 5, 24, backend),
                    false,
                )
                .unwrap();
            assert_observer_eq(&run.output, &reference, backend.label());
            assert_eq!(
                run.output.health_stats(),
                reference.health_stats(),
                "backend={}",
                backend.label()
            );
            assert!(run.output.stats.balanced(), "{:?}", run.output.stats);
            assert!(run.report.balanced(), "{:?}", run.report);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn health_on_is_bit_identical_fault_free_for_any_config(
            seed in proptest::prelude::any::<u64>(),
            window in 1usize..12,
            min_samples in 1usize..6,
            open_for in 1u64..100,
            probe_jitter in 0u64..40,
            warmup in 1u64..6,
            multiplier in 1.0f64..8.0,
            floor_ms in 0u64..400,
            span in 1u64..100,
            hedge_enabled in proptest::prelude::any::<bool>(),
            slow_fraction in 0.0f64..0.9,
            delay_ms in 0u64..40,
            min_tracked in 1usize..8,
        ) {
            use minedig_primitives::health::{AdaptiveConfig, BreakerConfig, HedgeConfig};
            let cfg = HealthConfig {
                seed,
                breaker: BreakerConfig {
                    window,
                    min_samples,
                    failure_threshold: 0.5,
                    open_for,
                    probe_jitter,
                },
                adaptive: AdaptiveConfig {
                    warmup,
                    multiplier,
                    floor_ms,
                    synthetic_span_ms: span,
                    ..AdaptiveConfig::default()
                },
                hedge: HedgeConfig {
                    enabled: hedge_enabled,
                    slow_fraction,
                    delay_ms,
                    min_tracked,
                },
            };
            let pool = pool_with_tip();
            let mut off = Observer::new(pool.clone(), true);
            let mut on = Observer::new(pool, true).with_health(cfg);
            for t in (1_000..1_100).step_by(5) {
                off.poll_all(t);
                on.poll_all(t);
            }
            proptest::prop_assert_eq!(&on.stats, &off.stats);
            proptest::prop_assert_eq!(on.current_prev, off.current_prev);
            proptest::prop_assert_eq!(&on.current_roots, &off.current_roots);
            proptest::prop_assert_eq!(&on.current_blobs, &off.current_blobs);
            let hs = on.health_stats().unwrap();
            proptest::prop_assert!(hs.balanced(), "{:?}", hs);
            proptest::prop_assert_eq!(hs.breaker.trips, 0);
        }
    }

    #[test]
    fn merged_poll_stats_stay_balanced() {
        let pool = pool_with_tip();
        let mut a = Observer::new(pool.clone(), true);
        a.poll_all(1_000);
        let mut b = Observer::new(pool, true);
        b.poll_all(1_020);
        let mut merged = a.stats.clone();
        merged.absorb(&b.stats);
        assert!(a.stats.balanced() && b.stats.balanced());
        assert!(merged.balanced());
        assert_eq!(merged.polls, a.stats.polls + b.stats.polls);
        assert_eq!(
            merged.max_blobs_per_prev,
            a.stats.max_blobs_per_prev.max(b.stats.max_blobs_per_prev)
        );
    }
}
