//! A Symantec-RuleSpace-style website category oracle.
//!
//! RuleSpace assigns one or more categories per site and covers only part
//! of each population (Table 3's "Categorized" row: 79 %/74 % on Alexa vs
//! 54 %/42 % on .org). We model both properties: every domain has latent
//! categories drawn from a context-dependent distribution, and the oracle
//! reveals them only with a zone-dependent coverage probability.

use minedig_primitives::DetRng;

/// Website categories (the subset appearing in Tables 3–5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Gaming sites.
    Gaming,
    /// Educational sites.
    EducationalSite,
    /// Shopping.
    Shopping,
    /// Pornography.
    Pornography,
    /// Technology & telecommunication.
    Technology,
    /// Business.
    Business,
    /// Religion.
    Religion,
    /// Health sites.
    HealthSite,
    /// Filesharing.
    Filesharing,
    /// Entertainment & music.
    EntertainmentMusic,
    /// Message boards / forums.
    MessageBoard,
    /// Finance and investing.
    Finance,
    /// Automotive.
    Automotive,
    /// Dynamic sites (RuleSpace's catch-all for generated content).
    DynamicSite,
    /// Hosting providers / parked infrastructure.
    Hosting,
    /// News.
    News,
    /// Travel.
    Travel,
    /// Sports.
    Sports,
}

impl Category {
    /// Label as printed in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Gaming => "Gaming",
            Category::EducationalSite => "Edu. Site",
            Category::Shopping => "Shopping",
            Category::Pornography => "Pornogr.",
            Category::Technology => "Tech. & Telecomm.",
            Category::Business => "Business",
            Category::Religion => "Religion",
            Category::HealthSite => "Health Site",
            Category::Filesharing => "Filesharing",
            Category::EntertainmentMusic => "Ent. & Music",
            Category::MessageBoard => "Msg. Board",
            Category::Finance => "Finance and Investing",
            Category::Automotive => "Automotive",
            Category::DynamicSite => "Dynamic Site",
            Category::Hosting => "Hosting",
            Category::News => "News",
            Category::Travel => "Travel",
            Category::Sports => "Sports",
        }
    }

    /// All categories.
    pub fn all() -> &'static [Category] {
        use Category::*;
        &[
            Gaming,
            EducationalSite,
            Shopping,
            Pornography,
            Technology,
            Business,
            Religion,
            HealthSite,
            Filesharing,
            EntertainmentMusic,
            MessageBoard,
            Finance,
            Automotive,
            DynamicSite,
            Hosting,
            News,
            Travel,
            Sports,
        ]
    }
}

/// A weighted category profile; weights need not be normalized.
pub type CategoryWeights = &'static [(Category, f64)];

/// Generic web background (clean domains and the long tail).
pub const GENERIC_WEB: CategoryWeights = &[
    (Category::Business, 14.0),
    (Category::Technology, 10.0),
    (Category::Shopping, 9.0),
    (Category::DynamicSite, 8.0),
    (Category::EntertainmentMusic, 7.0),
    (Category::News, 6.0),
    (Category::EducationalSite, 6.0),
    (Category::Hosting, 6.0),
    (Category::Gaming, 5.0),
    (Category::Finance, 5.0),
    (Category::HealthSite, 4.0),
    (Category::Travel, 4.0),
    (Category::Sports, 4.0),
    (Category::Pornography, 4.0),
    (Category::MessageBoard, 3.0),
    (Category::Religion, 2.0),
    (Category::Filesharing, 2.0),
    (Category::Automotive, 1.0),
];

/// Samples 1–3 latent categories from a weight profile.
pub fn sample_categories(rng: &mut DetRng, weights: CategoryWeights) -> Vec<Category> {
    let n = 1 + rng.weighted_index(&[0.55, 0.35, 0.10]);
    let w: Vec<f64> = weights.iter().map(|(_, x)| *x).collect();
    let mut cats = Vec::with_capacity(n);
    for _ in 0..n {
        let c = weights[rng.weighted_index(&w)].0;
        if !cats.contains(&c) {
            cats.push(c);
        }
    }
    cats
}

/// The RuleSpace oracle: reveals latent categories with zone-dependent
/// coverage.
#[derive(Clone, Debug)]
pub struct RuleSpace {
    rng: DetRng,
}

impl RuleSpace {
    /// Creates an oracle; `seed` controls which domains are covered.
    pub fn new(seed: u64) -> RuleSpace {
        RuleSpace {
            rng: DetRng::seed(seed).derive("rulespace"),
        }
    }

    /// Coverage probability for a domain in a zone. Popular (Alexa)
    /// domains are much better covered than the .org long tail, and
    /// obscure self-hosted sites are worse than average (Table 3's
    /// 79/74/54/42 % "Categorized" row).
    pub fn coverage(&self, zone: crate::zone::Zone, obscure: bool) -> f64 {
        let base = match zone {
            crate::zone::Zone::Alexa => 0.78,
            crate::zone::Zone::Com => 0.62,
            crate::zone::Zone::Net => 0.60,
            crate::zone::Zone::Org => 0.50,
        };
        if obscure {
            base * 0.84
        } else {
            base
        }
    }

    /// Classifies a domain: returns its latent categories if covered.
    /// Coverage is deterministic per domain name.
    pub fn classify(
        &self,
        domain_name: &str,
        zone: crate::zone::Zone,
        obscure: bool,
        latent: &[Category],
    ) -> Option<Vec<Category>> {
        let mut rng = self.rng.derive(domain_name);
        if rng.chance(self.coverage(zone, obscure)) {
            Some(latent.to_vec())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;

    #[test]
    fn sampling_respects_weights() {
        let mut rng = DetRng::seed(1);
        const PORN_HEAVY: CategoryWeights = &[
            (Category::Pornography, 19.0),
            (Category::Technology, 8.0),
            (Category::Gaming, 1.0),
        ];
        let mut porn = 0;
        let n = 5_000;
        for _ in 0..n {
            let cats = sample_categories(&mut rng, PORN_HEAVY);
            assert!(!cats.is_empty() && cats.len() <= 3);
            if cats.contains(&Category::Pornography) {
                porn += 1;
            }
        }
        let share = porn as f64 / n as f64;
        assert!(share > 0.6, "porn share {share}");
    }

    #[test]
    fn no_duplicate_categories_per_domain() {
        let mut rng = DetRng::seed(2);
        for _ in 0..1000 {
            let cats = sample_categories(&mut rng, GENERIC_WEB);
            let mut sorted = cats.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), cats.len());
        }
    }

    #[test]
    fn classification_is_deterministic_per_domain() {
        let rs = RuleSpace::new(3);
        let latent = vec![Category::Gaming];
        let a = rs.classify("example.org", Zone::Org, false, &latent);
        let b = rs.classify("example.org", Zone::Org, false, &latent);
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_matches_zone_targets() {
        let rs = RuleSpace::new(4);
        let latent = vec![Category::Business];
        let covered = |zone, obscure| {
            let mut n = 0;
            for i in 0..4_000 {
                if rs
                    .classify(&format!("d{i}.x"), zone, obscure, &latent)
                    .is_some()
                {
                    n += 1;
                }
            }
            n as f64 / 4_000.0
        };
        let alexa = covered(Zone::Alexa, false);
        let org = covered(Zone::Org, false);
        let org_obscure = covered(Zone::Org, true);
        assert!((0.74..0.82).contains(&alexa), "alexa {alexa}");
        assert!((0.46..0.54).contains(&org), "org {org}");
        assert!(org_obscure < org, "obscure coverage must be lower");
    }

    #[test]
    fn generic_web_covers_all_table_categories() {
        // Every category printed in Tables 3-5 must be producible.
        let listed: Vec<Category> = GENERIC_WEB.iter().map(|(c, _)| *c).collect();
        for c in Category::all() {
            assert!(listed.contains(c), "{c:?} missing from GENERIC_WEB");
        }
    }
}
