//! Scan populations (zones) and their connectivity model.

/// The four crawled populations of §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Zone {
    /// The Alexa Top 1M list (~950 K resolvable domains).
    Alexa,
    /// The .com zone (~116 M domains).
    Com,
    /// The .net zone (~12 M domains).
    Net,
    /// The .org zone (~9 M domains).
    Org,
}

impl Zone {
    /// All zones in the paper's presentation order.
    pub fn all() -> [Zone; 4] {
        [Zone::Alexa, Zone::Com, Zone::Net, Zone::Org]
    }

    /// Full population size as crawled by the paper.
    pub fn full_size(&self) -> u64 {
        match self {
            Zone::Alexa => 950_000,
            Zone::Com => 116_000_000,
            Zone::Net => 12_000_000,
            Zone::Org => 9_000_000,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Zone::Alexa => "Alexa",
            Zone::Com => ".com",
            Zone::Net => ".net",
            Zone::Org => ".org",
        }
    }

    /// TLD suffix used for synthesized domain names.
    pub fn tld(&self) -> &'static str {
        match self {
            Zone::Alexa => "com", // Alexa is cross-TLD; .com dominates
            Zone::Com => "com",
            Zone::Net => "net",
            Zone::Org => "org",
        }
    }

    /// Fraction of this zone's sites reachable via TLS in 2018 (the
    /// zgrab pipeline is TLS-only; Chrome follows http too). Alexa sites
    /// are popular and disproportionately TLS-enabled; long-tail zone
    /// domains much less so.
    pub fn tls_rate(&self) -> f64 {
        match self {
            Zone::Alexa => 0.72,
            Zone::Com => 0.60,
            Zone::Net => 0.58,
            Zone::Org => 0.48,
        }
    }

    /// Zones covered by the paper's Chrome (executing) measurement.
    pub fn chrome_scanned(&self) -> bool {
        matches!(self, Zone::Alexa | Zone::Org)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_sum_to_138m() {
        let total: u64 = Zone::all().iter().map(|z| z.full_size()).sum();
        assert_eq!(total, 137_950_000); // "over 138M domains"
    }

    #[test]
    fn chrome_scope_matches_paper() {
        assert!(Zone::Alexa.chrome_scanned());
        assert!(Zone::Org.chrome_scanned());
        assert!(!Zone::Com.chrome_scanned());
        assert!(!Zone::Net.chrome_scanned());
    }

    #[test]
    fn tls_rates_are_probabilities() {
        for z in Zone::all() {
            assert!((0.0..=1.0).contains(&z.tls_rate()));
        }
    }

    #[test]
    fn labels_distinct() {
        let labels: std::collections::HashSet<_> = Zone::all().iter().map(|z| z.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
