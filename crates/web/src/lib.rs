#![warn(missing_docs)]
//! The synthetic web universe the measurement pipelines run against.
//!
//! The paper crawls 137 M .com/.net/.org domains plus the Alexa Top 1M.
//! Neither the 2018 web nor those services exist anymore, so this crate
//! generates a *calibrated* synthetic web (substitution documented in
//! DESIGN.md):
//!
//! * [`zone`] — the four scan populations with their real sizes and
//!   TLS-availability model (the zgrab scan is TLS-only; Chrome also
//!   fetches plain http),
//! * [`category`] — a Symantec-RuleSpace-style multi-label category
//!   oracle with partial, zone-dependent coverage,
//! * [`deploy`] — the ground-truth *mining artifact* model: which domains
//!   carry which miner family, hosted how (service-hosted and
//!   NoCoin-listed vs self-hosted vs dynamically injected), plus the
//!   non-mining artifacts that matter to the paper's error analysis
//!   (dead miner references, Authedmine consent gating, the cpmstar ad
//!   network false positive, benign Wasm),
//! * [`universe`] — scan populations: artifact domains are materialized
//!   individually, the overwhelmingly clean remainder is represented by a
//!   sampled subset plus exact totals (importance sampling — detection
//!   rates on clean pages are measured on the sample, never assumed),
//! * [`page`] — HTML + behaviour synthesis per domain, consistent between
//!   the static (zgrab) and executing (Chrome) views of the same site,
//! * [`churn`] — between-scan-date artifact churn (Figure 2's declining
//!   second bars).
//!
//! Calibration inputs are the paper's *marginals* (prevalence, family
//! mix, hosting split); every table/figure is then produced by running
//! the actual detection pipelines against this ground truth.

pub mod category;
pub mod churn;
pub mod deploy;
pub mod page;
pub mod universe;
pub mod zone;

pub use category::{Category, RuleSpace};
pub use deploy::{ArtifactKind, Hosting};
pub use universe::{Domain, Population};
pub use zone::Zone;
