//! Ground-truth mining-artifact model and its calibration tables.
//!
//! A domain either is clean or carries exactly one *artifact*:
//!
//! * an **active miner** of some family, hosted in one of three ways —
//!   service-hosted (the script URL is on the mining service's domain and
//!   thus on the NoCoin list), self-hosted (a copied/renamed build on the
//!   site's own infrastructure — invisible to the list), or dynamically
//!   injected (invisible even to static HTML scans);
//! * an **Authedmine consent miner** — listed script, but it never starts
//!   (and never compiles Wasm) without an explicit user opt-in, which a
//!   crawler never gives;
//! * a **dead reference** — a listed miner script tag whose mining never
//!   runs (revoked keys, abandoned installs; historically very common);
//! * the **cpmstar ad network** — a gaming ad script on the NoCoin list
//!   that the paper could not verify to contain mining code (their false
//!   positive example);
//! * **benign Wasm** — codecs/games/crypto libraries (the ~4 % of Wasm
//!   that is not a miner in Table 1).
//!
//! Expected counts are calibrated *at full zone scale* from the paper's
//! marginals; populations are sampled Poisson around them. Detection
//! outcomes are never hard-coded — they emerge from hosting/consent/TLS
//! mechanics when the real pipelines scan the synthesized pages.

use crate::category::{Category, CategoryWeights, GENERIC_WEB};
use crate::zone::Zone;
use minedig_nocoin::list::ServiceLabel;
use minedig_wasm::sigdb::{BenignKind, MinerFamily};

/// How an active miner's script reaches the page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hosting {
    /// Script served from the mining service's own (block-listed) domain.
    Hosted,
    /// A copied build served from the website's own infrastructure.
    SelfHosted,
    /// Injected dynamically by an innocuous-looking loader script.
    Injected,
}

/// A domain's mining-related artifact (ground truth).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A miner that actually runs on page load.
    ActiveMiner {
        /// Miner family.
        family: MinerFamily,
        /// Hosting style.
        hosting: Hosting,
    },
    /// Authedmine: listed script, requires consent, never runs headless.
    ConsentMiner,
    /// Listed miner script that no longer mines.
    DeadReference {
        /// Which service's script is referenced.
        label: ServiceLabel,
    },
    /// The cpmstar gaming ad network (block-list false positive).
    AdNetworkFp,
    /// Non-mining WebAssembly.
    BenignWasm {
        /// What kind of benign module.
        kind: BenignKind,
    },
}

impl ArtifactKind {
    /// True if loading the page executes mining Wasm.
    pub fn runs_miner(&self) -> bool {
        matches!(self, ArtifactKind::ActiveMiner { .. })
    }

    /// True if any Wasm compiles on page load. Note the jsMiner
    /// exception: the 2011 Bitcoin miner predates WebAssembly and mines
    /// in plain JavaScript (the paper finds only 31 instances of it, via
    /// the block list, not via Wasm).
    pub fn compiles_wasm(&self) -> bool {
        match self {
            ArtifactKind::ActiveMiner { family, .. } => *family != MinerFamily::JsMinerLegacy,
            ArtifactKind::BenignWasm { .. } => true,
            _ => false,
        }
    }
}

/// An expected-count cell of the deployment plan.
#[derive(Clone, Debug)]
pub struct ArtifactSpec {
    /// The artifact.
    pub kind: ArtifactKind,
    /// Expected number of such domains in the zone (full scale).
    pub expected: f64,
}

/// Per-family active-miner calibration for a zone:
/// `(family, expected_active_total, hosted_fraction)`.
///
/// Hosted fractions are solved from Table 2's blocked/missed split —
/// Alexa miners are far more evasive (129/737 listed) than .org miners
/// (450/1372), consistent with .org's hacked-WordPress profile using
/// stock service-hosted scripts.
fn active_table(zone: Zone) -> Vec<(MinerFamily, f64, f64)> {
    use MinerFamily::*;
    match zone {
        Zone::Alexa => vec![
            (Coinhive, 311.0, 0.35),
            (Skencituer, 123.0, 0.0),
            (Cryptoloot, 103.0, 0.20),
            (UnknownWss, 56.0, 0.0),
            (Notgiven688, 46.0, 0.0),
            (WebStatiBid, 25.0, 0.0),
            (FreecontentDate, 20.0, 0.0),
            (JsMinerLegacy, 3.0, 0.3),
            (OtherMiner, 50.0, 0.0),
        ],
        Zone::Org => vec![
            (Coinhive, 711.0, 0.55),
            (Cryptoloot, 183.0, 0.32),
            (WebStatiBid, 120.0, 0.0),
            (FreecontentDate, 108.0, 0.0),
            (Notgiven688, 92.0, 0.0),
            (Skencituer, 40.0, 0.0),
            (UnknownWss, 40.0, 0.0),
            (JsMinerLegacy, 8.0, 0.3),
            (OtherMiner, 70.0, 0.0),
        ],
        // .com/.net are not Chrome-scanned; their composition scales the
        // .org pattern by the zone's NoCoin-visible mass (see DESIGN.md).
        Zone::Com => scale_actives(Zone::Org, 11.7),
        Zone::Net => scale_actives(Zone::Org, 1.12),
    }
}

fn scale_actives(base: Zone, factor: f64) -> Vec<(MinerFamily, f64, f64)> {
    active_table(base)
        .into_iter()
        .map(|(f, n, h)| (f, n * factor, h))
        .collect()
}

/// Non-wasm listed artifacts + benign wasm for a zone:
/// `(kind, expected)`.
fn listed_extras(zone: Zone) -> Vec<(ArtifactKind, f64)> {
    use ArtifactKind::*;
    let (consent, dead_ch, dead_cl, dead_wp, fp, dead_other, benign) = match zone {
        Zone::Alexa => (60.0, 560.0, 40.0, 40.0, 130.0, 34.0, 59.0),
        Zone::Org => (45.0, 300.0, 25.0, 80.0, 50.0, 28.0, 119.0),
        Zone::Com => (530.0, 3510.0, 290.0, 940.0, 585.0, 330.0, 1390.0),
        Zone::Net => (50.0, 336.0, 28.0, 90.0, 56.0, 31.0, 133.0),
    };
    vec![
        (ConsentMiner, consent),
        (
            DeadReference {
                label: ServiceLabel::Coinhive,
            },
            dead_ch,
        ),
        (
            DeadReference {
                label: ServiceLabel::Cryptoloot,
            },
            dead_cl,
        ),
        (
            DeadReference {
                label: ServiceLabel::WpMonero,
            },
            dead_wp,
        ),
        (AdNetworkFp, fp),
        (
            DeadReference {
                label: ServiceLabel::Other,
            },
            dead_other,
        ),
        (
            BenignWasm {
                kind: BenignKind::Codec,
            },
            benign * 0.40,
        ),
        (
            BenignWasm {
                kind: BenignKind::Game,
            },
            benign * 0.30,
        ),
        (
            BenignWasm {
                kind: BenignKind::CryptoLib,
            },
            benign * 0.15,
        ),
        (
            BenignWasm {
                kind: BenignKind::Misc,
            },
            benign * 0.15,
        ),
    ]
}

/// The full deployment plan for a zone.
pub fn artifact_plan(zone: Zone) -> Vec<ArtifactSpec> {
    let mut plan = Vec::new();
    for (family, total, hosted_frac) in active_table(zone) {
        let hosted = total * hosted_frac;
        let rest = total - hosted;
        // Evasive miners split ~3:1 between plain self-hosting and
        // dynamic injection.
        let specs = [
            (Hosting::Hosted, hosted),
            (Hosting::SelfHosted, rest * 0.75),
            (Hosting::Injected, rest * 0.25),
        ];
        for (hosting, expected) in specs {
            if expected > 0.0 {
                plan.push(ArtifactSpec {
                    kind: ArtifactKind::ActiveMiner { family, hosting },
                    expected,
                });
            }
        }
    }
    for (kind, expected) in listed_extras(zone) {
        if expected > 0.0 {
            plan.push(ArtifactSpec { kind, expected });
        }
    }
    plan
}

/// Probability a listed script sits beyond the 256 kB zgrab cut.
pub const BEYOND_CUT_RATE: f64 = 0.03;

/// Latent-category weight profile for an artifact in a zone — the
/// mechanism behind Table 3's category skews (e.g. the cpmstar FP pulling
/// "Gaming" to the top of the NoCoin column).
pub fn category_profile(zone: Zone, kind: &ArtifactKind) -> CategoryWeights {
    const FP_ADNET: CategoryWeights = &[
        (Category::Gaming, 75.0),
        (Category::EntertainmentMusic, 10.0),
        (Category::Technology, 5.0),
        (Category::MessageBoard, 5.0),
        (Category::Shopping, 5.0),
    ];
    const ACTIVE_ALEXA: CategoryWeights = &[
        (Category::Pornography, 20.0),
        (Category::Technology, 9.0),
        (Category::Filesharing, 9.0),
        (Category::EducationalSite, 5.5),
        (Category::EntertainmentMusic, 5.5),
        (Category::Gaming, 4.0),
        (Category::Business, 4.0),
        (Category::Shopping, 4.0),
        (Category::DynamicSite, 3.5),
        (Category::MessageBoard, 3.0),
        (Category::Hosting, 3.0),
        (Category::News, 2.5),
        (Category::Finance, 2.0),
        (Category::HealthSite, 2.0),
        (Category::Sports, 1.5),
        (Category::Travel, 1.5),
        (Category::Religion, 1.0),
        (Category::Automotive, 1.0),
    ];
    const ACTIVE_ORG: CategoryWeights = &[
        (Category::Religion, 10.0),
        (Category::Business, 9.0),
        (Category::EducationalSite, 9.0),
        (Category::HealthSite, 8.0),
        (Category::Technology, 7.0),
        (Category::Pornography, 4.0),
        (Category::Gaming, 3.5),
        (Category::Shopping, 3.5),
        (Category::DynamicSite, 3.0),
        (Category::EntertainmentMusic, 3.0),
        (Category::Hosting, 2.5),
        (Category::MessageBoard, 2.5),
        (Category::News, 2.0),
        (Category::Finance, 2.0),
        (Category::Sports, 1.5),
        (Category::Travel, 1.5),
        (Category::Filesharing, 1.0),
        (Category::Automotive, 1.0),
    ];
    const DEAD_ALEXA: CategoryWeights = &[
        (Category::Gaming, 13.0),
        (Category::EducationalSite, 11.0),
        (Category::Shopping, 10.0),
        (Category::Pornography, 6.5),
        (Category::Technology, 6.5),
        (Category::Business, 6.0),
        (Category::EntertainmentMusic, 5.0),
        (Category::DynamicSite, 5.0),
        (Category::News, 4.0),
        (Category::Finance, 4.0),
        (Category::HealthSite, 3.5),
        (Category::MessageBoard, 3.5),
        (Category::Hosting, 3.0),
        (Category::Filesharing, 3.0),
        (Category::Sports, 2.5),
        (Category::Travel, 2.5),
        (Category::Religion, 1.5),
        (Category::Automotive, 1.5),
    ];
    const DEAD_ORG: CategoryWeights = &[
        (Category::Gaming, 30.0),
        (Category::Business, 8.5),
        (Category::EducationalSite, 6.5),
        (Category::Pornography, 5.5),
        (Category::Shopping, 5.0),
        (Category::Technology, 4.5),
        (Category::DynamicSite, 4.0),
        (Category::EntertainmentMusic, 4.0),
        (Category::Religion, 3.5),
        (Category::HealthSite, 3.0),
        (Category::News, 3.0),
        (Category::MessageBoard, 3.0),
        (Category::Hosting, 2.5),
        (Category::Finance, 2.5),
        (Category::Filesharing, 2.0),
        (Category::Sports, 2.0),
        (Category::Travel, 2.0),
        (Category::Automotive, 1.5),
    ];

    match kind {
        ArtifactKind::AdNetworkFp => FP_ADNET,
        ArtifactKind::ActiveMiner { .. } | ArtifactKind::BenignWasm { .. } => match zone {
            Zone::Alexa => ACTIVE_ALEXA,
            _ => ACTIVE_ORG,
        },
        ArtifactKind::ConsentMiner | ArtifactKind::DeadReference { .. } => match zone {
            Zone::Alexa => DEAD_ALEXA,
            _ => DEAD_ORG,
        },
    }
}

/// Generic background profile for clean domains.
pub fn clean_profile() -> CategoryWeights {
    GENERIC_WEB
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_actives(zone: Zone) -> f64 {
        artifact_plan(zone)
            .iter()
            .filter(|s| s.kind.runs_miner())
            .map(|s| s.expected)
            .sum()
    }

    fn total_hosted_actives(zone: Zone) -> f64 {
        artifact_plan(zone)
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    ArtifactKind::ActiveMiner {
                        hosting: Hosting::Hosted,
                        ..
                    }
                )
            })
            .map(|s| s.expected)
            .sum()
    }

    #[test]
    fn alexa_calibration_matches_table2() {
        // 737 wasm miners, 129 of them list-visible.
        assert!((total_actives(Zone::Alexa) - 737.0).abs() < 2.0);
        assert!((total_hosted_actives(Zone::Alexa) - 129.0).abs() < 3.0);
    }

    #[test]
    fn org_calibration_matches_table2() {
        assert!((total_actives(Zone::Org) - 1372.0).abs() < 2.0);
        assert!((total_hosted_actives(Zone::Org) - 450.0).abs() < 12.0);
    }

    #[test]
    fn nocoin_visible_mass_matches_chrome_hits() {
        // hosted actives + consent + dead refs + fp ≈ 993 (Alexa) / 978 (.org).
        for (zone, target) in [(Zone::Alexa, 993.0), (Zone::Org, 978.0)] {
            let listed: f64 = artifact_plan(zone)
                .iter()
                .filter(|s| match s.kind {
                    ArtifactKind::ActiveMiner { hosting, .. } => hosting == Hosting::Hosted,
                    ArtifactKind::ConsentMiner
                    | ArtifactKind::DeadReference { .. }
                    | ArtifactKind::AdNetworkFp => true,
                    ArtifactKind::BenignWasm { .. } => false,
                })
                .map(|s| s.expected)
                .sum();
            assert!(
                (listed - target).abs() / target < 0.05,
                "{zone:?}: listed {listed} vs {target}"
            );
        }
    }

    #[test]
    fn total_wasm_matches_table1() {
        for (zone, target) in [(Zone::Alexa, 796.0), (Zone::Org, 1491.0)] {
            let wasm: f64 = artifact_plan(zone)
                .iter()
                .filter(|s| s.kind.compiles_wasm())
                .map(|s| s.expected)
                .sum();
            assert!(
                (wasm - target).abs() / target < 0.02,
                "{zone:?}: wasm {wasm} vs {target}"
            );
        }
    }

    #[test]
    fn zgrab_expected_hits_match_fig2() {
        // listed mass × TLS rate × in-cut rate ≈ Fig 2 first-scan bars.
        for (zone, target) in [
            (Zone::Alexa, 710.0),
            (Zone::Com, 6676.0),
            (Zone::Net, 618.0),
            (Zone::Org, 473.0),
        ] {
            let listed: f64 = artifact_plan(zone)
                .iter()
                .filter(|s| match s.kind {
                    ArtifactKind::ActiveMiner { hosting, .. } => hosting == Hosting::Hosted,
                    ArtifactKind::ConsentMiner
                    | ArtifactKind::DeadReference { .. }
                    | ArtifactKind::AdNetworkFp => true,
                    ArtifactKind::BenignWasm { .. } => false,
                })
                .map(|s| s.expected)
                .sum();
            let expected_hits = listed * zone.tls_rate() * (1.0 - BEYOND_CUT_RATE);
            assert!(
                (expected_hits - target).abs() / target < 0.10,
                "{zone:?}: zgrab expectation {expected_hits} vs {target}"
            );
        }
    }

    #[test]
    fn miner_prevalence_is_below_008_percent() {
        // The paper's headline: < 0.08 % of probed sites.
        for zone in Zone::all() {
            let rate = total_actives(zone) / zone.full_size() as f64;
            assert!(rate < 0.0008, "{zone:?} prevalence {rate}");
        }
    }

    #[test]
    fn profiles_exist_for_all_kinds() {
        let kinds = [
            ArtifactKind::AdNetworkFp,
            ArtifactKind::ConsentMiner,
            ArtifactKind::ActiveMiner {
                family: MinerFamily::Coinhive,
                hosting: Hosting::Hosted,
            },
            ArtifactKind::DeadReference {
                label: ServiceLabel::Coinhive,
            },
            ArtifactKind::BenignWasm {
                kind: BenignKind::Codec,
            },
        ];
        for zone in Zone::all() {
            for kind in &kinds {
                assert!(!category_profile(zone, kind).is_empty());
            }
        }
    }

    #[test]
    fn fp_profile_is_gaming_dominated() {
        let w = category_profile(Zone::Alexa, &ArtifactKind::AdNetworkFp);
        assert_eq!(w[0].0, Category::Gaming);
        let total: f64 = w.iter().map(|(_, x)| x).sum();
        assert!(w[0].1 / total > 0.5);
    }
}
