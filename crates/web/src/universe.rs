//! Scan populations: materialized artifact domains plus a sampled clean
//! remainder.
//!
//! Scanning 116 M clean pages to confirm they are clean would be wasted
//! compute; scanning *none* of them would silently assume the pipeline
//! has no false positives. The population therefore carries (a) every
//! artifact domain individually, (b) an honest random sample of clean
//! domains that every pipeline also scans, and (c) the exact clean total
//! for extrapolation.

use crate::category::{sample_categories, Category};
use crate::deploy::{
    artifact_plan, category_profile, clean_profile, ArtifactKind, BEYOND_CUT_RATE,
};
use crate::zone::Zone;
use minedig_primitives::DetRng;
use minedig_wasm::corpus::default_profiles;
use minedig_wasm::sigdb::WasmClass;

/// One domain in a scan population.
#[derive(Clone, Debug)]
pub struct Domain {
    /// Domain name (synthesized, unique within the population).
    pub name: String,
    /// The zone it belongs to.
    pub zone: Zone,
    /// Whether the site serves TLS (zgrab requires it; Chrome does not).
    pub tls: bool,
    /// Ground-truth artifact, if any.
    pub artifact: Option<ArtifactKind>,
    /// Listed script placed beyond the 256 kB cut (zgrab blind spot).
    pub beyond_cut: bool,
    /// Which corpus build of the family's Wasm this site embeds.
    pub wasm_version: u32,
    /// Site-key/token index (for miner deployments).
    pub token_id: u64,
    /// Latent site categories (revealed only via the RuleSpace oracle).
    pub latent_categories: Vec<Category>,
}

/// A zone's scan population.
#[derive(Clone, Debug)]
pub struct Population {
    /// The zone.
    pub zone: Zone,
    /// Total domains in the zone (full scale).
    pub total: u64,
    /// All artifact-bearing domains, materialized.
    pub artifacts: Vec<Domain>,
    /// A random sample of clean domains (scanned for FP honesty).
    pub clean_sample: Vec<Domain>,
    /// Number of clean domains the sample represents.
    pub clean_total: u64,
}

impl Population {
    /// Generates a zone's population. `clean_sample_size` controls how
    /// many clean domains are materialized for FP measurement.
    pub fn generate(zone: Zone, seed: u64, clean_sample_size: usize) -> Population {
        let mut rng = DetRng::seed(seed).derive(&format!("web.universe.{}", zone.label()));
        let profiles = default_profiles();
        let versions_of = |class: &WasmClass| -> u32 {
            profiles
                .iter()
                .find(|p| p.class == *class)
                .map(|p| p.versions)
                .unwrap_or(1)
        };

        let mut artifacts = Vec::new();
        let mut domain_counter = 0u64;
        for spec in artifact_plan(zone) {
            let count = rng.poisson(spec.expected);
            for _ in 0..count {
                domain_counter += 1;
                let name = format!("site-{:07}.{}", domain_counter, zone.tld());
                let profile = category_profile(zone, &spec.kind);
                let wasm_versions = match spec.kind {
                    ArtifactKind::ActiveMiner { family, .. } => {
                        versions_of(&WasmClass::Miner(family))
                    }
                    ArtifactKind::BenignWasm { kind } => versions_of(&WasmClass::Benign(kind)),
                    _ => 1,
                };
                artifacts.push(Domain {
                    name,
                    zone,
                    tls: rng.chance(zone.tls_rate()),
                    artifact: Some(spec.kind),
                    beyond_cut: rng.chance(BEYOND_CUT_RATE),
                    wasm_version: rng.gen_range(wasm_versions as u64) as u32,
                    token_id: rng.gen_range(1 << 20),
                    latent_categories: sample_categories(&mut rng, profile),
                });
            }
        }

        let clean_total = zone.full_size() - artifacts.len() as u64;
        let clean_sample = (0..clean_sample_size)
            .map(|i| Domain {
                name: format!("clean-{i:07}.{}", zone.tld()),
                zone,
                tls: rng.chance(zone.tls_rate()),
                artifact: None,
                beyond_cut: false,
                wasm_version: 0,
                token_id: 0,
                latent_categories: sample_categories(&mut rng, clean_profile()),
            })
            .collect();

        Population {
            zone,
            total: zone.full_size(),
            artifacts,
            clean_sample,
            clean_total,
        }
    }

    /// Iterates over every materialized domain (artifacts + clean sample).
    pub fn scanned_domains(&self) -> impl Iterator<Item = &Domain> {
        self.artifacts.iter().chain(self.clean_sample.iter())
    }

    /// Number of ground-truth active miners.
    pub fn true_active_miners(&self) -> usize {
        self.artifacts
            .iter()
            .filter(|d| d.artifact.map(|a| a.runs_miner()).unwrap_or(false))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexa_population_matches_calibration() {
        let p = Population::generate(Zone::Alexa, 42, 100);
        let actives = p.true_active_miners() as f64;
        assert!((actives - 737.0).abs() < 737.0 * 0.15, "actives {actives}");
        assert_eq!(p.total, 950_000);
        assert_eq!(p.clean_total + p.artifacts.len() as u64, p.total);
        assert_eq!(p.clean_sample.len(), 100);
    }

    #[test]
    fn population_is_deterministic() {
        let a = Population::generate(Zone::Org, 42, 10);
        let b = Population::generate(Zone::Org, 42, 10);
        assert_eq!(a.artifacts.len(), b.artifacts.len());
        assert_eq!(a.artifacts[0].name, b.artifacts[0].name);
        let c = Population::generate(Zone::Org, 43, 10);
        assert_ne!(a.artifacts.len(), c.artifacts.len());
    }

    #[test]
    fn domain_names_are_unique() {
        let p = Population::generate(Zone::Org, 42, 50);
        let mut names: Vec<&String> = p.scanned_domains().map(|d| &d.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn wasm_versions_stay_within_family_range() {
        let p = Population::generate(Zone::Alexa, 42, 0);
        let profiles = default_profiles();
        for d in &p.artifacts {
            if let Some(ArtifactKind::ActiveMiner { family, .. }) = d.artifact {
                // jsMiner is JS-only and has no Wasm corpus profile.
                let Some(profile) = profiles
                    .iter()
                    .find(|pr| pr.class == WasmClass::Miner(family))
                else {
                    assert_eq!(family, minedig_wasm::sigdb::MinerFamily::JsMinerLegacy);
                    continue;
                };
                assert!(d.wasm_version < profile.versions);
            }
        }
    }

    #[test]
    fn tls_rate_is_respected() {
        let p = Population::generate(Zone::Org, 42, 2_000);
        let tls = p.clean_sample.iter().filter(|d| d.tls).count() as f64 / 2_000.0;
        assert!((tls - Zone::Org.tls_rate()).abs() < 0.04, "tls {tls}");
    }

    #[test]
    fn every_domain_has_categories() {
        let p = Population::generate(Zone::Alexa, 42, 20);
        for d in p.scanned_domains() {
            assert!(!d.latent_categories.is_empty());
        }
    }
}
