//! Between-scan-date churn.
//!
//! Figure 2 shows two scan dates per dataset, with the second bar 10–16 %
//! lower everywhere — operators remove miners (media pressure, Coinhive
//! key revocations) faster than new ones appear in early 2018. We model
//! this as per-artifact removal with a small compensating arrival rate.

use crate::universe::{Domain, Population};
use minedig_primitives::DetRng;

/// Fraction of artifact domains whose artifact disappears between the
/// two scan dates of Figure 2.
pub const DEFAULT_REMOVAL_RATE: f64 = 0.13;

/// Fraction of (former) artifact count re-appearing as fresh deployments.
pub const DEFAULT_ARRIVAL_RATE: f64 = 0.015;

/// What changed between the two scan dates, in terms of the *first*
/// population's artifact list — the structure an incremental rescan
/// needs to decide which first-scan outcomes are still valid.
#[derive(Clone, Debug)]
pub struct ChurnDelta {
    /// Indices into the first population's artifacts that survived, in
    /// order: `second.artifacts[i] == first.artifacts[survivors[i]]`
    /// for `i < survivors.len()`.
    pub survivors: Vec<usize>,
    /// Fresh deployments appended after the survivors.
    pub arrivals: usize,
    /// Artifacts removed between the dates.
    pub removed: usize,
}

/// Produces the population as seen at the second scan date.
pub fn second_scan(first: &Population, seed: u64, removal_rate: f64) -> Population {
    second_scan_with_delta(first, seed, removal_rate).0
}

/// [`second_scan`] plus the [`ChurnDelta`] relating the two dates, so a
/// rescan can reuse first-scan outcomes for unchanged domains.
pub fn second_scan_with_delta(
    first: &Population,
    seed: u64,
    removal_rate: f64,
) -> (Population, ChurnDelta) {
    let mut rng = DetRng::seed(seed).derive(&format!("web.churn.{}", first.zone.label()));
    let mut artifacts: Vec<Domain> = Vec::with_capacity(first.artifacts.len());
    let mut survivors = Vec::with_capacity(first.artifacts.len());
    for (index, d) in first.artifacts.iter().enumerate() {
        if !rng.chance(removal_rate) {
            survivors.push(index);
            artifacts.push(d.clone());
        }
    }
    let removed = first.artifacts.len() - survivors.len();
    // Fresh arrivals clone the profile of random survivors under new
    // names (a new deployment looks like an existing kind of deployment).
    let arrivals = (first.artifacts.len() as f64 * DEFAULT_ARRIVAL_RATE) as usize;
    let mut appended = 0usize;
    for i in 0..arrivals {
        if artifacts.is_empty() {
            break;
        }
        let template = artifacts[rng.range_usize(0, artifacts.len())].clone();
        let mut fresh = template;
        fresh.name = format!("fresh-{i:05}.{}", first.zone.tld());
        fresh.token_id = rng.gen_range(1 << 20);
        artifacts.push(fresh);
        appended += 1;
    }
    let population = Population {
        zone: first.zone,
        total: first.total,
        clean_total: first.total - artifacts.len() as u64,
        artifacts,
        clean_sample: first.clean_sample.clone(),
    };
    (
        population,
        ChurnDelta {
            survivors,
            arrivals: appended,
            removed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Population;
    use crate::zone::Zone;

    #[test]
    fn second_scan_shrinks_by_roughly_the_removal_rate() {
        let first = Population::generate(Zone::Org, 42, 10);
        let second = second_scan(&first, 42, DEFAULT_REMOVAL_RATE);
        let ratio = second.artifacts.len() as f64 / first.artifacts.len() as f64;
        // −13 % removal + 1.5 % arrivals ≈ 0.885.
        assert!((0.85..0.92).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn totals_remain_consistent() {
        let first = Population::generate(Zone::Alexa, 42, 10);
        let second = second_scan(&first, 42, DEFAULT_REMOVAL_RATE);
        assert_eq!(second.total, first.total);
        assert_eq!(
            second.clean_total + second.artifacts.len() as u64,
            second.total
        );
    }

    #[test]
    fn churn_is_deterministic() {
        let first = Population::generate(Zone::Org, 42, 0);
        let a = second_scan(&first, 7, DEFAULT_REMOVAL_RATE);
        let b = second_scan(&first, 7, DEFAULT_REMOVAL_RATE);
        assert_eq!(a.artifacts.len(), b.artifacts.len());
    }

    #[test]
    fn delta_indexes_the_survivors_exactly() {
        let first = Population::generate(Zone::Org, 42, 10);
        let (second, delta) = second_scan_with_delta(&first, 7, DEFAULT_REMOVAL_RATE);
        assert_eq!(delta.survivors.len() + delta.removed, first.artifacts.len());
        assert_eq!(
            delta.survivors.len() + delta.arrivals,
            second.artifacts.len()
        );
        for (i, &src) in delta.survivors.iter().enumerate() {
            assert_eq!(second.artifacts[i].name, first.artifacts[src].name);
        }
        for fresh in &second.artifacts[delta.survivors.len()..] {
            assert!(fresh.name.starts_with("fresh-"));
        }
        // The plain entry point is the same draw.
        let plain = second_scan(&first, 7, DEFAULT_REMOVAL_RATE);
        assert_eq!(plain.artifacts.len(), second.artifacts.len());
    }

    #[test]
    fn zero_removal_only_adds_arrivals() {
        let first = Population::generate(Zone::Org, 42, 0);
        let second = second_scan(&first, 7, 0.0);
        assert!(second.artifacts.len() >= first.artifacts.len());
    }
}
