//! Page synthesis: one consistent site per domain, viewed two ways.
//!
//! The same domain must look consistent to the zgrab pipeline (static
//! HTML, TLS-only, first 256 kB) and to the Chrome pipeline (full page
//! execution). [`synthesize_page`] builds the executable page;
//! [`zgrab_fetch`] is the static view derived from the same HTML.

use crate::deploy::{ArtifactKind, Hosting};
use crate::universe::Domain;
use minedig_browser::page::{Page, ScriptBehavior, ScriptEffect, ScriptRef};
use minedig_primitives::{DetRng, Hash32};
use minedig_wasm::corpus::{default_profiles, generate_module};
use minedig_wasm::sigdb::{MinerFamily, WasmClass};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// zgrab's page-size cutoff: "we download the first 256 kB".
pub const ZGRAB_CUT: usize = 256 * 1024;

/// Seed namespace for the Wasm corpus embedded in pages; fixed so that
/// the signature database built from the corpus matches what pages serve.
pub const CORPUS_SEED: u64 = 0x1660;

/// Cache of generated Wasm binaries, keyed by `(class label, version)`.
type WasmCache = Mutex<HashMap<(String, u32), Vec<u8>>>;

fn wasm_cache() -> &'static WasmCache {
    static CACHE: OnceLock<WasmCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns (and caches) the Wasm binary for a corpus class/version.
pub fn wasm_bytes(class: WasmClass, version: u32) -> Vec<u8> {
    let key = (class.label(), version);
    if let Some(bytes) = wasm_cache().lock().get(&(key.0.clone(), key.1)) {
        return bytes.clone();
    }
    let profiles = default_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.class == class)
        .expect("class has a profile");
    let bytes = generate_module(profile, version % profile.versions, CORPUS_SEED).encode();
    wasm_cache().lock().insert((key.0, key.1), bytes.clone());
    bytes
}

/// Service-hosted script URL (if the family offers one) and the WebSocket
/// backend host pattern for a miner family.
pub fn family_assets(family: MinerFamily, token_id: u64) -> (Option<String>, String) {
    match family {
        MinerFamily::Coinhive => (
            Some("https://coinhive.com/lib/coinhive.min.js".to_string()),
            format!("wss://ws{:03}.coinhive.com/proxy", 1 + token_id % 32),
        ),
        MinerFamily::Cryptoloot => (
            Some("https://crypto-loot.com/lib/miner.min.js".to_string()),
            "wss://wss.crypto-loot.com/proxy".to_string(),
        ),
        MinerFamily::Skencituer => (None, "wss://skencituer.com/sock".to_string()),
        MinerFamily::UnknownWss => (
            None,
            format!(
                "wss://{}.xyz/ws",
                &Hash32::keccak(&token_id.to_le_bytes()).to_hex()[..10]
            ),
        ),
        MinerFamily::Notgiven688 => (None, "wss://webminepool.com/ws".to_string()),
        MinerFamily::WebStatiBid => (None, "wss://web.stati.bid/ws".to_string()),
        MinerFamily::FreecontentDate => (None, "wss://freecontent.date/ws".to_string()),
        MinerFamily::JsMinerLegacy => (
            Some("https://bitp.it/lib/jsminer.js".to_string()),
            "wss://bitp.it/ws".to_string(),
        ),
        MinerFamily::OtherMiner => (None, "wss://pool-backend.pw/ws".to_string()),
    }
}

/// Reverse mapping: which miner family operates a WebSocket backend host.
/// This is the paper's classification aid ("categorized them, e.g.,
/// through their Websocket communication backend"). Unknown hosts return
/// `None` — those miners end up in the paper's "UnknownWSS" class.
pub fn family_for_ws_url(url: &str) -> Option<MinerFamily> {
    const KNOWN: [(&str, MinerFamily); 8] = [
        ("coinhive.com", MinerFamily::Coinhive),
        ("crypto-loot.com", MinerFamily::Cryptoloot),
        ("skencituer.com", MinerFamily::Skencituer),
        ("webminepool.com", MinerFamily::Notgiven688),
        ("web.stati.bid", MinerFamily::WebStatiBid),
        ("freecontent.date", MinerFamily::FreecontentDate),
        ("bitp.it", MinerFamily::JsMinerLegacy),
        ("pool-backend.pw", MinerFamily::OtherMiner),
    ];
    KNOWN
        .iter()
        .find(|(host, _)| url.contains(host))
        .map(|(_, f)| *f)
}

/// 32-char site key string for a token id.
pub fn site_key(token_id: u64) -> String {
    Hash32::keccak(&token_id.to_le_bytes()).to_hex()[..32].to_string()
}

fn filler_paragraphs(rng: &mut DetRng, n: usize) -> String {
    const WORDS: &[&str] = &[
        "community",
        "service",
        "update",
        "release",
        "support",
        "project",
        "archive",
        "news",
        "contact",
        "download",
        "stream",
        "media",
        "forum",
        "article",
        "gallery",
        "events",
    ];
    let mut out = String::new();
    for _ in 0..n {
        out.push_str("<p>");
        for _ in 0..12 {
            out.push_str(rng.choose(WORDS) as &str);
            out.push(' ');
        }
        out.push_str("</p>\n");
    }
    out
}

/// Synthesizes the executable page for a domain.
pub fn synthesize_page(domain: &Domain, seed: u64) -> Page {
    let mut rng = DetRng::seed(seed).derive(&format!("web.page.{}", domain.name));
    let mut head = String::new();
    let mut body = String::new();
    let mut behaviors: Vec<(ScriptRef, ScriptBehavior)> = Vec::new();
    let inline_count = 0usize;

    // Generic site furniture.
    head.push_str(&format!(
        "<title>{}</title>\n<script src=\"/js/jquery.min.js\"></script>\n",
        domain.name
    ));
    body.push_str(&filler_paragraphs(&mut rng, 4));

    // Occasional benign dynamic behaviour so DOM-quiet logic is exercised
    // on clean pages too.
    if rng.chance(0.3) {
        head.push_str("<script src=\"/js/app.js\"></script>\n");
        behaviors.push((
            ScriptRef::Src("/js/app.js".into()),
            ScriptBehavior {
                delay_ms: 40,
                effects: vec![ScriptEffect::MutateDom {
                    times: 1 + rng.gen_range(3) as u32,
                    interval_ms: 300,
                }],
            },
        ));
    }

    let mut artifact_markup = String::new();
    if let Some(kind) = domain.artifact {
        match kind {
            ArtifactKind::ActiveMiner { family, hosting } => {
                let (hosted_url, ws_url) = family_assets(family, domain.token_id);
                // jsMiner predates Wasm: it mines in plain JS, so it opens
                // the pool socket but never compiles a module.
                let start = if family == MinerFamily::JsMinerLegacy {
                    ScriptEffect::OpenWebSocket {
                        url: ws_url,
                        frames: vec![format!(
                            "{{\"type\":\"auth\",\"token\":\"{}\"}}",
                            site_key(domain.token_id)
                        )],
                    }
                } else {
                    ScriptEffect::StartMiner {
                        wasm: wasm_bytes(WasmClass::Miner(family), domain.wasm_version),
                        ws_url,
                        token: site_key(domain.token_id),
                        submit_interval_ms: 700 + rng.gen_range(600),
                    }
                };
                match hosting {
                    Hosting::Hosted => {
                        let url = hosted_url
                            .unwrap_or_else(|| format!("https://{}/js/miner.js", domain.name));
                        artifact_markup.push_str(&format!(
                            "<script src=\"{url}\"></script>\n<script>var miner=new Miner.Anonymous('{}');miner.start();</script>\n",
                            site_key(domain.token_id)
                        ));
                        behaviors.push((
                            ScriptRef::Src(url),
                            ScriptBehavior {
                                delay_ms: 30 + rng.gen_range(120),
                                effects: vec![start],
                            },
                        ));
                    }
                    Hosting::SelfHosted => {
                        let url = format!(
                            "https://{}/assets/{}.js",
                            domain.name,
                            &Hash32::keccak(domain.name.as_bytes()).to_hex()[..12]
                        );
                        artifact_markup.push_str(&format!("<script src=\"{url}\"></script>\n"));
                        behaviors.push((
                            ScriptRef::Src(url),
                            ScriptBehavior {
                                delay_ms: 30 + rng.gen_range(120),
                                effects: vec![start],
                            },
                        ));
                    }
                    Hosting::Injected => {
                        let url = format!(
                            "https://cdn-{}.net/pkg/{}.js",
                            rng.gen_range(1000),
                            &Hash32::keccak(domain.name.as_bytes()).to_hex()[..10]
                        );
                        artifact_markup
                            .push_str("<script>(function(){/* perf bootstrap */})();</script>\n");
                        behaviors.push((
                            ScriptRef::Inline(inline_count),
                            ScriptBehavior {
                                delay_ms: 20 + rng.gen_range(100),
                                effects: vec![ScriptEffect::InjectScript { src: url.clone() }],
                            },
                        ));
                        behaviors.push((
                            ScriptRef::Src(url),
                            ScriptBehavior {
                                delay_ms: 10,
                                effects: vec![start],
                            },
                        ));
                    }
                }
            }
            ArtifactKind::ConsentMiner => {
                // Authedmine: listed script, but mining starts only after
                // an opt-in dialog a crawler never clicks. The behaviour
                // is present-but-gated, so a consenting load (see
                // `LoadPolicy::grant_consent`) does mine — Authedmine uses
                // the same Coinhive infrastructure.
                let url = "https://authedmine.com/lib/authedmine.min.js".to_string();
                artifact_markup.push_str(&format!("<script src=\"{url}\"></script>\n"));
                let (_hosted, ws_url) = family_assets(MinerFamily::Coinhive, domain.token_id);
                behaviors.push((
                    ScriptRef::Src(url),
                    ScriptBehavior {
                        delay_ms: 30 + rng.gen_range(120),
                        effects: vec![ScriptEffect::ConsentGated {
                            inner: Box::new(ScriptEffect::StartMiner {
                                wasm: wasm_bytes(
                                    WasmClass::Miner(MinerFamily::Coinhive),
                                    domain.wasm_version,
                                ),
                                ws_url,
                                token: site_key(domain.token_id),
                                submit_interval_ms: 900,
                            }),
                        }],
                    },
                ));
            }
            ArtifactKind::DeadReference { label } => {
                let url = match label {
                    minedig_nocoin::list::ServiceLabel::Coinhive => {
                        "https://coinhive.com/lib/coinhive.min.js".to_string()
                    }
                    minedig_nocoin::list::ServiceLabel::Cryptoloot => {
                        "https://crypto-loot.com/lib/miner.min.js".to_string()
                    }
                    minedig_nocoin::list::ServiceLabel::WpMonero => {
                        "/wp-content/plugins/wp-monero-miner-pro/js/worker.js".to_string()
                    }
                    _ => "https://coin-have.com/c.js".to_string(),
                };
                artifact_markup.push_str(&format!("<script src=\"{url}\"></script>\n"));
                // No behaviour: the reference is dead.
            }
            ArtifactKind::AdNetworkFp => {
                let url = "https://server.cpmstar.com/cached/view.js".to_string();
                artifact_markup.push_str(&format!("<script src=\"{url}\"></script>\n"));
                behaviors.push((
                    ScriptRef::Src(url),
                    ScriptBehavior {
                        delay_ms: 60,
                        effects: vec![ScriptEffect::MutateDom {
                            times: 2,
                            interval_ms: 400,
                        }],
                    },
                ));
            }
            ArtifactKind::BenignWasm { kind } => {
                let url = format!("https://{}/wasm-loader.js", domain.name);
                artifact_markup.push_str(&format!("<script src=\"{url}\"></script>\n"));
                behaviors.push((
                    ScriptRef::Src(url),
                    ScriptBehavior {
                        delay_ms: 50,
                        effects: vec![ScriptEffect::InstantiateWasm {
                            wasm: wasm_bytes(WasmClass::Benign(kind), domain.wasm_version),
                        }],
                    },
                ));
            }
        }
    }

    // Optionally hide the artifact markup beyond the 256 kB zgrab cut.
    if domain.beyond_cut && !artifact_markup.is_empty() {
        let padding = filler_paragraphs(&mut rng, 40);
        let mut pad = String::with_capacity(ZGRAB_CUT + 8_192);
        while pad.len() <= ZGRAB_CUT {
            pad.push_str(&padding);
        }
        body.push_str(&pad);
        body.push_str(&artifact_markup);
    } else {
        head.push_str(&artifact_markup);
    }

    body.push_str(&filler_paragraphs(&mut rng, 3));
    let html = format!("<html><head>\n{head}</head><body>\n{body}</body></html>");

    let mut page = Page::new(&domain.name, &html);
    // A small fraction of the web never fires a load event.
    page.fires_load_event = !rng.chance(0.02);
    for (r, b) in behaviors {
        page.behaviors.insert(r, b);
    }
    page
}

/// The zgrab view: TLS-only, first 256 kB of the same HTML.
pub fn zgrab_fetch(domain: &Domain, seed: u64) -> Option<String> {
    if !domain.tls {
        return None;
    }
    let page = synthesize_page(domain, seed);
    let mut html = page.html;
    if html.len() > ZGRAB_CUT {
        let mut cut = ZGRAB_CUT;
        while cut > 0 && !html.is_char_boundary(cut) {
            cut -= 1;
        }
        html.truncate(cut);
    }
    Some(html)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Population;
    use crate::zone::Zone;
    use minedig_browser::loader::{load_page, LoadPolicy};
    use minedig_nocoin::NoCoinEngine;
    use minedig_wasm::sigdb::BenignKind;

    fn domain_with(kind: ArtifactKind, tls: bool, beyond_cut: bool) -> Domain {
        Domain {
            name: "testsite.org".to_string(),
            zone: Zone::Org,
            tls,
            artifact: Some(kind),
            beyond_cut,
            wasm_version: 0,
            token_id: 7,
            latent_categories: vec![],
        }
    }

    #[test]
    fn hosted_miner_is_visible_both_ways() {
        let d = domain_with(
            ArtifactKind::ActiveMiner {
                family: MinerFamily::Coinhive,
                hosting: Hosting::Hosted,
            },
            true,
            false,
        );
        let html = zgrab_fetch(&d, 1).unwrap();
        assert!(html.contains("coinhive.com/lib/coinhive.min.js"));
        let cap = load_page(&synthesize_page(&d, 1), &LoadPolicy::default());
        assert!(cap.has_wasm());
        assert!(cap.websocket_urls()[0].contains("coinhive.com"));
    }

    #[test]
    fn selfhosted_miner_runs_but_evades_list() {
        let d = domain_with(
            ArtifactKind::ActiveMiner {
                family: MinerFamily::Coinhive,
                hosting: Hosting::SelfHosted,
            },
            true,
            false,
        );
        let html = zgrab_fetch(&d, 1).unwrap();
        assert!(!html.contains("coinhive.com/lib"));
        assert!(NoCoinEngine::new().scan_page(&d.name, &html).is_empty());
        let cap = load_page(&synthesize_page(&d, 1), &LoadPolicy::default());
        assert!(cap.has_wasm(), "self-hosted miner must still mine");
    }

    #[test]
    fn injected_miner_invisible_statically() {
        let d = domain_with(
            ArtifactKind::ActiveMiner {
                family: MinerFamily::Cryptoloot,
                hosting: Hosting::Injected,
            },
            true,
            false,
        );
        let html = zgrab_fetch(&d, 1).unwrap();
        assert!(!html.contains(".js\"></script>\n<script>var miner"));
        assert!(NoCoinEngine::new().scan_page(&d.name, &html).is_empty());
        let cap = load_page(&synthesize_page(&d, 1), &LoadPolicy::default());
        assert!(cap.has_wasm(), "injected miner must run in the browser");
    }

    #[test]
    fn consent_miner_listed_but_no_wasm() {
        let d = domain_with(ArtifactKind::ConsentMiner, true, false);
        let html = zgrab_fetch(&d, 1).unwrap();
        assert!(!NoCoinEngine::new().scan_page(&d.name, &html).is_empty());
        let cap = load_page(&synthesize_page(&d, 1), &LoadPolicy::default());
        assert!(!cap.has_wasm(), "authedmine must not mine without consent");
    }

    #[test]
    fn consent_miner_mines_when_user_opts_in() {
        // Authedmine's whole pitch: same miner, explicit consent.
        let d = domain_with(ArtifactKind::ConsentMiner, true, false);
        let policy = LoadPolicy {
            grant_consent: true,
            ..LoadPolicy::default()
        };
        let cap = load_page(&synthesize_page(&d, 1), &policy);
        assert!(cap.has_wasm(), "consenting visitor mines");
        assert!(cap.websocket_urls()[0].contains("coinhive.com"));
    }

    #[test]
    fn non_tls_site_invisible_to_zgrab() {
        let d = domain_with(
            ArtifactKind::ActiveMiner {
                family: MinerFamily::Coinhive,
                hosting: Hosting::Hosted,
            },
            false,
            false,
        );
        assert!(zgrab_fetch(&d, 1).is_none());
        // Chrome still sees it (http fallback).
        let cap = load_page(&synthesize_page(&d, 1), &LoadPolicy::default());
        assert!(cap.has_wasm());
    }

    #[test]
    fn beyond_cut_script_hidden_from_zgrab_only() {
        let d = domain_with(ArtifactKind::ConsentMiner, true, true);
        let html = zgrab_fetch(&d, 1).unwrap();
        assert_eq!(html.len(), ZGRAB_CUT);
        assert!(NoCoinEngine::new().scan_page(&d.name, &html).is_empty());
        // The full page still contains it.
        let page = synthesize_page(&d, 1);
        assert!(page.html.contains("authedmine"));
    }

    #[test]
    fn benign_wasm_compiles_but_no_websocket() {
        let d = domain_with(
            ArtifactKind::BenignWasm {
                kind: BenignKind::Codec,
            },
            true,
            false,
        );
        let cap = load_page(&synthesize_page(&d, 1), &LoadPolicy::default());
        assert!(cap.has_wasm());
        assert!(cap.websocket_urls().is_empty());
    }

    #[test]
    fn clean_pages_trigger_nothing() {
        let pop = Population::generate(Zone::Org, 42, 30);
        let engine = NoCoinEngine::new();
        for d in &pop.clean_sample {
            if let Some(html) = zgrab_fetch(d, 1) {
                assert!(engine.scan_page(&d.name, &html).is_empty(), "{}", d.name);
            }
            let cap = load_page(&synthesize_page(d, 1), &LoadPolicy::default());
            assert!(!cap.has_wasm(), "{}", d.name);
        }
    }

    #[test]
    fn wasm_bytes_are_cached_and_stable() {
        let a = wasm_bytes(WasmClass::Miner(MinerFamily::Coinhive), 3);
        let b = wasm_bytes(WasmClass::Miner(MinerFamily::Coinhive), 3);
        assert_eq!(a, b);
        let c = wasm_bytes(WasmClass::Miner(MinerFamily::Coinhive), 4);
        assert_ne!(a, c);
    }

    #[test]
    fn page_synthesis_is_deterministic() {
        let d = domain_with(ArtifactKind::AdNetworkFp, true, false);
        let a = synthesize_page(&d, 1);
        let b = synthesize_page(&d, 1);
        assert_eq!(a.html, b.html);
        assert_eq!(a.behaviors.len(), b.behaviors.len());
    }
}
