#![warn(missing_docs)]
//! A deterministic headless-browser simulator with DevTools-style
//! instrumentation.
//!
//! §3.2 of the paper instruments a stock Chrome via the DevTools protocol
//! "to capture all Websocket communication and to dump all detected Wasm
//! code", with a precise page-load policy: *"we wait for the page's load
//! event and set a 2 s timer on every DOM change but wait no longer than
//! additional 5 s before we mark the page as loaded completely. In case of
//! no load event, we wait no longer than 15 s to mark the website as timed
//! out. We further save the first 65 kB of the final HTML."*
//!
//! This crate reproduces that sensor: pages are HTML plus *declared
//! script behaviours* (what each script does when executed — inject
//! another script, compile a Wasm module and start mining against a
//! WebSocket backend, mutate the DOM, …). A virtual-time event loop
//! executes the behaviours and records DevTools-style events; the capture
//! (final HTML, Wasm dumps, WebSocket log) is exactly what the paper's
//! measurement pipeline consumes.

pub mod clock;
pub mod devtools;
pub mod loader;
pub mod page;

pub use devtools::{Capture, DevtoolsEvent};
pub use loader::{load_page, LoadPolicy};
pub use page::{Page, ScriptBehavior, ScriptEffect, ScriptRef};
