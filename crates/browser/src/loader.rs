//! The page-load event loop with the paper's completion policy.

use crate::devtools::{Capture, DevtoolsEvent, FrameDirection, LoadOutcome};
use crate::page::{Page, ScriptBehavior, ScriptEffect, ScriptRef};
use minedig_nocoin::extract::extract_script_tags;
use minedig_primitives::{DetRng, Hash32};
use minedig_wasm::interp::{Instance, Val};
use minedig_wasm::module::Module;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Page-load policy. Defaults are the paper's §3.2 parameters.
#[derive(Clone, Debug)]
pub struct LoadPolicy {
    /// DOM-quiet window after the last mutation (2 s).
    pub dom_quiet_ms: u64,
    /// Maximum additional wait after the load event (5 s).
    pub post_load_cap_ms: u64,
    /// Hard timeout when no load event fires (15 s).
    pub timeout_ms: u64,
    /// Bytes of final HTML to keep (65 kB).
    pub final_html_bytes: usize,
    /// Cap on dynamically injected scripts (loop guard).
    pub max_injected_scripts: u32,
    /// Fuel for executing compiled Wasm (instructions).
    pub wasm_fuel: u64,
    /// Whether the simulated visitor grants consent dialogs (Authedmine).
    /// Crawlers — including the paper's — never do; interactive visits
    /// might.
    pub grant_consent: bool,
    /// Seed for simulated network latencies.
    pub seed: u64,
}

impl Default for LoadPolicy {
    fn default() -> Self {
        LoadPolicy {
            dom_quiet_ms: 2_000,
            post_load_cap_ms: 5_000,
            timeout_ms: 15_000,
            final_html_bytes: 65_536,
            max_injected_scripts: 32,
            wasm_fuel: 200_000,
            grant_consent: false,
            seed: 0xb70,
        }
    }
}

#[derive(Debug)]
enum Action {
    ExecScript(ScriptRef),
    ExecInjected(String),
    Mutation { remaining: u32, interval_ms: u64 },
    MinerSubmit { url: String, interval_ms: u64 },
    ConsentedEffect(ScriptEffect),
    FireLoad,
}

struct Sim<'a> {
    policy: &'a LoadPolicy,
    rng: DetRng,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    actions: Vec<Action>,
    seq: u64,
    events: Vec<DevtoolsEvent>,
    wasm_dumps: Vec<Vec<u8>>,
    injected_html: String,
    injected_count: u32,
    load_at: Option<u64>,
    last_dom_ms: Option<u64>,
}

impl<'a> Sim<'a> {
    fn schedule(&mut self, at_ms: u64, action: Action) {
        let idx = self.actions.len();
        self.actions.push(action);
        self.queue.push(Reverse((at_ms, self.seq, idx)));
        self.seq += 1;
    }

    fn dom_mutation(&mut self, at_ms: u64) {
        self.last_dom_ms = Some(at_ms);
        self.events.push(DevtoolsEvent::DomMutation { at_ms });
    }

    /// The time at which the page would be considered done given current
    /// state, if no further events arrive.
    fn candidate_finish(&self) -> u64 {
        match self.load_at {
            Some(load) => {
                // The 2 s quiet timer starts at the load event and resets
                // on every DOM change; the total post-load wait is capped
                // at 5 s (§3.2).
                let dom_quiet = self
                    .last_dom_ms
                    .map(|dom| dom + self.policy.dom_quiet_ms)
                    .unwrap_or(0)
                    .max(load + self.policy.dom_quiet_ms);
                dom_quiet.min(load + self.policy.post_load_cap_ms)
            }
            None => self.policy.timeout_ms,
        }
    }

    fn compile_wasm(&mut self, bytes: &[u8], at_ms: u64) {
        let id = Hash32::keccak(bytes);
        let dump_index = self.wasm_dumps.len();
        self.wasm_dumps.push(bytes.to_vec());
        self.events.push(DevtoolsEvent::WasmCompiled {
            dump_index,
            size: bytes.len(),
            id,
            at_ms,
        });
        // Actually execute the module's first export, as the page would.
        if let Ok(module) = Module::parse(bytes) {
            if let Some(export) = module.exports.first().map(|e| e.name.clone()) {
                let needs_arg = module
                    .export_func(&export)
                    .and_then(|i| module.func_type(i))
                    .map(|t| t.params.len())
                    .unwrap_or(0);
                let mut inst = Instance::new(module);
                let mut fuel = self.policy.wasm_fuel;
                let args: Vec<Val> = (0..needs_arg).map(|_| Val::I32(1)).collect();
                let _ = inst.invoke(&export, &args, &mut fuel);
            }
        }
    }

    fn run_effects(&mut self, behavior: &ScriptBehavior, now: u64) {
        for effect in &behavior.effects {
            match effect {
                ScriptEffect::InjectScript { src } => {
                    if self.injected_count >= self.policy.max_injected_scripts {
                        continue;
                    }
                    self.injected_count += 1;
                    self.injected_html
                        .push_str(&format!("<script src=\"{src}\"></script>"));
                    self.dom_mutation(now);
                    let latency = self.fetch_latency();
                    self.schedule(now + latency, Action::ExecInjected(src.clone()));
                }
                ScriptEffect::StartMiner {
                    wasm,
                    ws_url,
                    token,
                    submit_interval_ms,
                } => {
                    self.compile_wasm(&wasm.clone(), now);
                    self.events.push(DevtoolsEvent::WebSocketCreated {
                        url: ws_url.clone(),
                        at_ms: now,
                    });
                    self.events.push(DevtoolsEvent::WebSocketFrame {
                        url: ws_url.clone(),
                        direction: FrameDirection::Sent,
                        payload: format!("{{\"type\":\"auth\",\"token\":\"{token}\"}}"),
                        at_ms: now,
                    });
                    self.events.push(DevtoolsEvent::WebSocketFrame {
                        url: ws_url.clone(),
                        direction: FrameDirection::Received,
                        payload: "{\"type\":\"authed\",\"hashes\":0}".to_string(),
                        at_ms: now + 1,
                    });
                    self.events.push(DevtoolsEvent::WebSocketFrame {
                        url: ws_url.clone(),
                        direction: FrameDirection::Received,
                        payload:
                            "{\"type\":\"job\",\"job_id\":\"j1\",\"blob\":\"…\",\"difficulty\":16}"
                                .to_string(),
                        at_ms: now + 2,
                    });
                    self.schedule(
                        now + submit_interval_ms,
                        Action::MinerSubmit {
                            url: ws_url.clone(),
                            interval_ms: *submit_interval_ms,
                        },
                    );
                }
                ScriptEffect::InstantiateWasm { wasm } => {
                    self.compile_wasm(&wasm.clone(), now);
                }
                ScriptEffect::OpenWebSocket { url, frames } => {
                    self.events.push(DevtoolsEvent::WebSocketCreated {
                        url: url.clone(),
                        at_ms: now,
                    });
                    for (i, f) in frames.iter().enumerate() {
                        self.events.push(DevtoolsEvent::WebSocketFrame {
                            url: url.clone(),
                            direction: FrameDirection::Sent,
                            payload: f.clone(),
                            at_ms: now + i as u64,
                        });
                    }
                }
                ScriptEffect::MutateDom { times, interval_ms } => {
                    if *times > 0 {
                        self.schedule(
                            now + interval_ms,
                            Action::Mutation {
                                remaining: *times,
                                interval_ms: *interval_ms,
                            },
                        );
                    }
                }
                ScriptEffect::ConsentGated { inner } => {
                    // The opt-in dialog renders either way.
                    self.dom_mutation(now);
                    if self.policy.grant_consent {
                        // The simulated user reads and clicks after ~600 ms.
                        self.schedule(now + 600, Action::ConsentedEffect((**inner).clone()));
                    }
                }
            }
        }
    }

    fn fetch_latency(&mut self) -> u64 {
        30 + (self.rng.exponential(1.0 / 60.0) as u64).min(1_500)
    }
}

/// Loads a page under the given policy, returning the capture.
pub fn load_page(page: &Page, policy: &LoadPolicy) -> Capture {
    let mut sim = Sim {
        policy,
        rng: DetRng::seed(policy.seed).derive(&format!("browser.load.{}", page.domain)),
        queue: BinaryHeap::new(),
        actions: Vec::new(),
        seq: 0,
        events: Vec::new(),
        wasm_dumps: Vec::new(),
        injected_html: String::new(),
        injected_count: 0,
        load_at: None,
        last_dom_ms: None,
    };

    // Parse the document and schedule initial scripts.
    let tags = extract_script_tags(&page.html);
    let mut inline_idx = 0usize;
    let mut last_initial_exec = 0u64;
    for tag in &tags {
        let (script_ref, base_time) = match &tag.src {
            Some(src) => {
                let latency = sim.fetch_latency();
                sim.events.push(DevtoolsEvent::ScriptLoaded {
                    url: src.clone(),
                    at_ms: latency,
                });
                (ScriptRef::Src(src.clone()), latency)
            }
            None => {
                let r = ScriptRef::Inline(inline_idx);
                inline_idx += 1;
                (r, 5)
            }
        };
        let delay = page
            .behaviors
            .get(&script_ref)
            .map(|b| b.delay_ms)
            .unwrap_or(0);
        let exec_at = base_time + delay;
        last_initial_exec = last_initial_exec.max(exec_at);
        sim.schedule(exec_at, Action::ExecScript(script_ref));
    }

    if page.fires_load_event {
        sim.schedule(last_initial_exec + 20, Action::FireLoad);
    }

    // Event loop.
    let hard_limit = policy.timeout_ms;
    let mut finished_at = None;
    while let Some(Reverse((t, _, idx))) = sim.queue.pop() {
        // Stop if the page is already "done" before this event.
        let f = sim.candidate_finish();
        if t > f || t > hard_limit {
            finished_at = Some(f.min(hard_limit));
            break;
        }
        let action = std::mem::replace(&mut sim.actions[idx], Action::FireLoad);
        match action {
            Action::ExecScript(script_ref) => {
                if let Some(behavior) = page.behaviors.get(&script_ref).cloned() {
                    sim.run_effects(&behavior, t);
                }
            }
            Action::ExecInjected(src) => {
                let script_ref = ScriptRef::Src(src);
                if let Some(behavior) = page.behaviors.get(&script_ref).cloned() {
                    sim.run_effects(&behavior, t);
                }
            }
            Action::Mutation {
                remaining,
                interval_ms,
            } => {
                sim.dom_mutation(t);
                if remaining > 1 {
                    sim.schedule(
                        t + interval_ms,
                        Action::Mutation {
                            remaining: remaining - 1,
                            interval_ms,
                        },
                    );
                }
            }
            Action::MinerSubmit { url, interval_ms } => {
                sim.events.push(DevtoolsEvent::WebSocketFrame {
                    url: url.clone(),
                    direction: FrameDirection::Sent,
                    payload: "{\"type\":\"submit\",\"job_id\":\"j1\",\"nonce\":0,\"result\":\"…\"}"
                        .to_string(),
                    at_ms: t,
                });
                sim.events.push(DevtoolsEvent::WebSocketFrame {
                    url: url.clone(),
                    direction: FrameDirection::Received,
                    payload: "{\"type\":\"hash_accepted\",\"hashes\":16}".to_string(),
                    at_ms: t + 1,
                });
                if t + interval_ms <= hard_limit {
                    sim.schedule(t + interval_ms, Action::MinerSubmit { url, interval_ms });
                }
            }
            Action::ConsentedEffect(effect) => {
                let behavior = ScriptBehavior {
                    delay_ms: 0,
                    effects: vec![effect],
                };
                sim.run_effects(&behavior, t);
            }
            Action::FireLoad => {
                sim.load_at = Some(t);
                sim.events.push(DevtoolsEvent::LoadEvent { at_ms: t });
            }
        }
    }
    let finished_at = finished_at.unwrap_or_else(|| sim.candidate_finish().min(hard_limit));
    let outcome = if sim.load_at.is_some() {
        LoadOutcome::Loaded
    } else {
        LoadOutcome::TimedOut
    };

    // Final HTML: fetched document plus dynamically injected tags,
    // truncated to the policy's byte budget on a char boundary.
    let mut final_html = page.html.clone();
    final_html.push_str(&sim.injected_html);
    let final_html = truncate_on_char_boundary(final_html, policy.final_html_bytes);

    // Drop events recorded past the finish line (the real capture stops
    // when the page is marked done).
    let mut events = sim.events;
    events.retain(|e| event_time(e) <= finished_at);
    events.sort_by_key(event_time);

    Capture {
        domain: page.domain.clone(),
        outcome,
        finished_at_ms: finished_at,
        events,
        wasm_dumps: sim.wasm_dumps,
        final_html,
    }
}

fn event_time(e: &DevtoolsEvent) -> u64 {
    match e {
        DevtoolsEvent::ScriptLoaded { at_ms, .. }
        | DevtoolsEvent::WasmCompiled { at_ms, .. }
        | DevtoolsEvent::WebSocketCreated { at_ms, .. }
        | DevtoolsEvent::WebSocketFrame { at_ms, .. }
        | DevtoolsEvent::DomMutation { at_ms }
        | DevtoolsEvent::LoadEvent { at_ms } => *at_ms,
    }
}

fn truncate_on_char_boundary(mut s: String, max_bytes: usize) -> String {
    if s.len() <= max_bytes {
        return s;
    }
    let mut cut = max_bytes;
    while cut > 0 && !s.is_char_boundary(cut) {
        cut -= 1;
    }
    s.truncate(cut);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_wasm::corpus::{default_profiles, generate_module};

    fn miner_wasm() -> Vec<u8> {
        let profiles = default_profiles();
        generate_module(&profiles[0], 0, 42).encode()
    }

    fn miner_page() -> Page {
        let html = r#"<html><head>
            <script src="https://coinhive.com/lib/coinhive.min.js"></script>
        </head><body>content</body></html>"#;
        Page::new("miner.example", html).with_behavior(
            ScriptRef::Src("https://coinhive.com/lib/coinhive.min.js".into()),
            ScriptBehavior {
                delay_ms: 50,
                effects: vec![ScriptEffect::StartMiner {
                    wasm: miner_wasm(),
                    ws_url: "wss://ws001.coinhive.com/proxy".into(),
                    token: "SITEKEY123".into(),
                    submit_interval_ms: 800,
                }],
            },
        )
    }

    #[test]
    fn clean_page_loads_without_artifacts() {
        let page = Page::new("clean.example", "<html><p>hello</p></html>");
        let cap = load_page(&page, &LoadPolicy::default());
        assert_eq!(cap.outcome, LoadOutcome::Loaded);
        assert!(!cap.has_wasm());
        assert!(cap.websocket_urls().is_empty());
    }

    #[test]
    fn miner_page_produces_wasm_and_ws_traffic() {
        let cap = load_page(&miner_page(), &LoadPolicy::default());
        assert_eq!(cap.outcome, LoadOutcome::Loaded);
        assert!(cap.has_wasm());
        assert_eq!(cap.websocket_urls(), vec!["wss://ws001.coinhive.com/proxy"]);
        assert!(cap.frame_count(FrameDirection::Sent) >= 2); // auth + ≥1 submit
        assert!(cap.frame_count(FrameDirection::Received) >= 2);
        // The dump is a parseable Wasm module.
        assert!(Module::parse(&cap.wasm_dumps[0]).is_ok());
    }

    #[test]
    fn dynamic_injection_is_visible_in_final_html_only() {
        // A loader page whose static HTML has no miner reference — the
        // pattern that makes zgrab-only scans miss miners.
        let html = r#"<html><script>/* innocent-looking bootstrap */</script></html>"#;
        let page = Page::new("loader.example", html)
            .with_behavior(
                ScriptRef::Inline(0),
                ScriptBehavior {
                    delay_ms: 10,
                    effects: vec![ScriptEffect::InjectScript {
                        src: "https://coinhive.com/lib/coinhive.min.js".into(),
                    }],
                },
            )
            .with_behavior(
                ScriptRef::Src("https://coinhive.com/lib/coinhive.min.js".into()),
                ScriptBehavior {
                    delay_ms: 0,
                    effects: vec![ScriptEffect::StartMiner {
                        wasm: miner_wasm(),
                        ws_url: "wss://ws002.coinhive.com/proxy".into(),
                        token: "KEY".into(),
                        submit_interval_ms: 700,
                    }],
                },
            );
        assert!(!page.html.contains("coinhive.com"));
        let cap = load_page(&page, &LoadPolicy::default());
        assert!(cap.final_html.contains("coinhive.com/lib/coinhive.min.js"));
        assert!(cap.has_wasm());
    }

    #[test]
    fn no_load_event_times_out_at_15s() {
        let mut page = Page::new("dead.example", "<html></html>");
        page.fires_load_event = false;
        let cap = load_page(&page, &LoadPolicy::default());
        assert_eq!(cap.outcome, LoadOutcome::TimedOut);
        assert_eq!(cap.finished_at_ms, 15_000);
    }

    #[test]
    fn dom_mutations_extend_wait_but_cap_at_5s() {
        // A page that mutates the DOM every second, forever (until cap).
        let page = Page::new("busy.example", "<html><script>spin()</script></html>").with_behavior(
            ScriptRef::Inline(0),
            ScriptBehavior {
                delay_ms: 0,
                effects: vec![ScriptEffect::MutateDom {
                    times: 100,
                    interval_ms: 1_000,
                }],
            },
        );
        let cap = load_page(&page, &LoadPolicy::default());
        assert_eq!(cap.outcome, LoadOutcome::Loaded);
        let load_at = cap
            .events
            .iter()
            .find_map(|e| match e {
                DevtoolsEvent::LoadEvent { at_ms } => Some(*at_ms),
                _ => None,
            })
            .unwrap();
        // Mutations every 1 s keep resetting the 2 s timer, so the +5 s
        // cap decides.
        assert_eq!(cap.finished_at_ms, load_at + 5_000);
    }

    #[test]
    fn quiet_page_finishes_quickly() {
        let page = Page::new("quiet.example", "<html><p>static</p></html>");
        let cap = load_page(&page, &LoadPolicy::default());
        assert!(
            cap.finished_at_ms < 3_000,
            "finished {}",
            cap.finished_at_ms
        );
    }

    #[test]
    fn final_html_is_truncated_to_65kb() {
        let big_body = "x".repeat(100_000);
        let page = Page::new("big.example", &format!("<html>{big_body}</html>"));
        let cap = load_page(&page, &LoadPolicy::default());
        assert_eq!(cap.final_html.len(), 65_536);
    }

    #[test]
    fn injection_loop_is_capped() {
        // a.js injects a.js injects a.js … must terminate via the cap.
        let page = Page::new("loop.example", r#"<script src="a.js"></script>"#).with_behavior(
            ScriptRef::Src("a.js".into()),
            ScriptBehavior {
                delay_ms: 0,
                effects: vec![ScriptEffect::InjectScript { src: "a.js".into() }],
            },
        );
        let cap = load_page(&page, &LoadPolicy::default());
        assert_eq!(cap.outcome, LoadOutcome::Loaded);
        assert!(cap.final_html.matches("a.js").count() <= 40);
    }

    #[test]
    fn consent_gated_effect_dormant_by_default() {
        let page = Page::new("authed.example", r#"<script src="a.js"></script>"#).with_behavior(
            ScriptRef::Src("a.js".into()),
            ScriptBehavior {
                delay_ms: 0,
                effects: vec![ScriptEffect::ConsentGated {
                    inner: Box::new(ScriptEffect::StartMiner {
                        wasm: miner_wasm(),
                        ws_url: "wss://ws.authedmine.com/proxy".into(),
                        token: "K".into(),
                        submit_interval_ms: 500,
                    }),
                }],
            },
        );
        let cap = load_page(&page, &LoadPolicy::default());
        assert!(!cap.has_wasm(), "no consent, no mining");
        assert!(cap.websocket_urls().is_empty());
        // But the dialog rendered (a DOM mutation happened).
        assert!(cap
            .events
            .iter()
            .any(|e| matches!(e, DevtoolsEvent::DomMutation { .. })));

        // An opted-in visit mines.
        let consenting = LoadPolicy {
            grant_consent: true,
            ..LoadPolicy::default()
        };
        let cap = load_page(&page, &consenting);
        assert!(cap.has_wasm(), "consent granted, mining starts");
        assert_eq!(cap.websocket_urls(), vec!["wss://ws.authedmine.com/proxy"]);
    }

    #[test]
    fn deterministic_capture() {
        let a = load_page(&miner_page(), &LoadPolicy::default());
        let b = load_page(&miner_page(), &LoadPolicy::default());
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.finished_at_ms, b.finished_at_ms);
        assert_eq!(a.wasm_dumps, b.wasm_dumps);
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let s = "é".repeat(100); // 2 bytes each
        let t = truncate_on_char_boundary(s, 33);
        assert_eq!(t.len(), 32);
        assert!(t.chars().all(|c| c == 'é'));
    }
}
