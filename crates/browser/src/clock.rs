//! Virtual time.

/// A millisecond-resolution virtual clock.
///
/// All browser activity is simulated against this clock, so a "15 second"
/// page timeout costs microseconds of wall time and runs identically on
/// every machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimClock {
    now_ms: u64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock; time never goes backwards.
    pub fn advance_to(&mut self, t_ms: u64) {
        debug_assert!(t_ms >= self.now_ms, "clock moved backwards");
        self.now_ms = self.now_ms.max(t_ms);
    }

    /// Advances by a delta.
    pub fn advance_by(&mut self, delta_ms: u64) {
        self.now_ms += delta_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_by(100);
        assert_eq!(c.now_ms(), 100);
        c.advance_to(250);
        assert_eq!(c.now_ms(), 250);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = SimClock::new();
        c.advance_to(100);
        c.advance_to(100); // same time is fine
        assert_eq!(c.now_ms(), 100);
    }
}
