//! The page model: HTML plus declared script behaviours.
//!
//! We do not implement a JavaScript engine; what matters to the paper's
//! pipeline is the *observable effect* of each script (does it inject
//! another script? compile Wasm? open a WebSocket to a pool?). Pages are
//! therefore HTML (scanned exactly like the real crawler scans it) plus a
//! behaviour table keyed by script identity. The synthetic web generator
//! (`minedig-web`) produces both halves consistently.

use std::collections::HashMap;

/// Identifies a script within a page.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ScriptRef {
    /// External script by (unresolved) `src` attribute.
    Src(String),
    /// Inline script by occurrence index.
    Inline(usize),
}

/// What a script does when executed.
#[derive(Clone, Debug, PartialEq)]
pub enum ScriptEffect {
    /// Appends a new `<script src=...>` to the document (dynamic loader —
    /// invisible to the static zgrab scan, visible to the browser).
    InjectScript {
        /// The injected script's src.
        src: String,
    },
    /// Compiles a Wasm module and starts mining against a pool endpoint:
    /// emits a WasmCompiled dump plus WebSocket traffic.
    StartMiner {
        /// The miner's Wasm binary.
        wasm: Vec<u8>,
        /// Pool WebSocket URL.
        ws_url: String,
        /// Site key / token sent in the auth message.
        token: String,
        /// Interval between submit frames, ms.
        submit_interval_ms: u64,
    },
    /// Compiles (and optionally runs) a Wasm module without any network
    /// activity — benign Wasm like codecs and games.
    InstantiateWasm {
        /// The module binary.
        wasm: Vec<u8>,
    },
    /// Opens a WebSocket and exchanges canned frames (non-mining apps).
    OpenWebSocket {
        /// Endpoint URL.
        url: String,
        /// Text frames sent by the page.
        frames: Vec<String>,
    },
    /// Mutates the DOM repeatedly (spinners, ads, hydration) — this is
    /// what keeps the paper's 2 s DOM-quiet timer resetting.
    MutateDom {
        /// Number of mutations.
        times: u32,
        /// Interval between mutations, ms.
        interval_ms: u64,
    },
    /// An effect behind an explicit user opt-in dialog — Authedmine's
    /// model. A crawler never grants consent, so the inner effect stays
    /// dormant (only the dialog's DOM mutation is visible); a consenting
    /// visit (see `LoadPolicy::grant_consent`) runs it.
    ConsentGated {
        /// The effect unlocked by the opt-in.
        inner: Box<ScriptEffect>,
    },
}

/// A script's declared behaviour.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScriptBehavior {
    /// Execution delay after the script is fetched/reached, ms.
    pub delay_ms: u64,
    /// Effects, executed in order at the script's execution time.
    pub effects: Vec<ScriptEffect>,
}

/// A page: domain, HTML and behaviours.
#[derive(Clone, Debug, Default)]
pub struct Page {
    /// The domain the page was served from.
    pub domain: String,
    /// Raw HTML as fetched.
    pub html: String,
    /// Whether the page ever fires a load event (dead pages time out).
    pub fires_load_event: bool,
    /// Behaviour table.
    pub behaviors: HashMap<ScriptRef, ScriptBehavior>,
}

impl Page {
    /// A minimal page with the given HTML that loads normally.
    pub fn new(domain: &str, html: &str) -> Page {
        Page {
            domain: domain.to_string(),
            html: html.to_string(),
            fires_load_event: true,
            behaviors: HashMap::new(),
        }
    }

    /// Attaches a behaviour to a script.
    pub fn with_behavior(mut self, script: ScriptRef, behavior: ScriptBehavior) -> Page {
        self.behaviors.insert(script, behavior);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_builder() {
        let p = Page::new("example.com", "<html></html>").with_behavior(
            ScriptRef::Src("a.js".into()),
            ScriptBehavior {
                delay_ms: 10,
                effects: vec![ScriptEffect::MutateDom {
                    times: 3,
                    interval_ms: 100,
                }],
            },
        );
        assert!(p.fires_load_event);
        assert_eq!(p.behaviors.len(), 1);
        assert!(p.behaviors.contains_key(&ScriptRef::Src("a.js".into())));
    }

    #[test]
    fn script_refs_are_distinct() {
        assert_ne!(ScriptRef::Src("a.js".into()), ScriptRef::Inline(0));
        assert_ne!(ScriptRef::Inline(0), ScriptRef::Inline(1));
    }
}
