//! DevTools-style instrumentation events and the page capture.

use minedig_primitives::Hash32;

/// Direction of a WebSocket frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameDirection {
    /// Page → server.
    Sent,
    /// Server → page.
    Received,
}

/// Events captured while loading a page (mirrors the DevTools domains the
/// paper subscribes to: Network.webSocket*, Debugger script events, plus
/// Wasm module dumps).
#[derive(Clone, Debug, PartialEq)]
pub enum DevtoolsEvent {
    /// An external script finished loading.
    ScriptLoaded {
        /// Resolved URL.
        url: String,
        /// Virtual ms since navigation.
        at_ms: u64,
    },
    /// A Wasm module was compiled; the module bytes are dumped to the
    /// capture's `wasm_dumps`.
    WasmCompiled {
        /// Index into `Capture::wasm_dumps`.
        dump_index: usize,
        /// Size in bytes.
        size: usize,
        /// Keccak of the bytes (dump identity).
        id: Hash32,
        /// Virtual ms since navigation.
        at_ms: u64,
    },
    /// A WebSocket connection was opened.
    WebSocketCreated {
        /// Endpoint URL.
        url: String,
        /// Virtual ms since navigation.
        at_ms: u64,
    },
    /// A WebSocket text frame crossed the wire.
    WebSocketFrame {
        /// Endpoint URL.
        url: String,
        /// Direction.
        direction: FrameDirection,
        /// Frame payload.
        payload: String,
        /// Virtual ms since navigation.
        at_ms: u64,
    },
    /// The DOM changed.
    DomMutation {
        /// Virtual ms since navigation.
        at_ms: u64,
    },
    /// The page's load event fired.
    LoadEvent {
        /// Virtual ms since navigation.
        at_ms: u64,
    },
}

/// How a page load ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadOutcome {
    /// Load event plus DOM-quiet (or the +5 s cap) — "loaded completely".
    Loaded,
    /// No load event within the 15 s budget — "timed out".
    TimedOut,
}

/// The result of loading one page.
#[derive(Clone, Debug)]
pub struct Capture {
    /// The domain that was loaded.
    pub domain: String,
    /// How the load ended.
    pub outcome: LoadOutcome,
    /// Virtual time at which the page was declared done, ms.
    pub finished_at_ms: u64,
    /// Ordered event log.
    pub events: Vec<DevtoolsEvent>,
    /// Dumped Wasm modules, in compile order.
    pub wasm_dumps: Vec<Vec<u8>>,
    /// First 65 kB of the final (post-execution) HTML.
    pub final_html: String,
}

impl Capture {
    /// All WebSocket endpoint URLs contacted.
    pub fn websocket_urls(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                DevtoolsEvent::WebSocketCreated { url, .. } => Some(url.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Whether any Wasm was compiled.
    pub fn has_wasm(&self) -> bool {
        !self.wasm_dumps.is_empty()
    }

    /// Count of frames in a given direction.
    pub fn frame_count(&self, direction: FrameDirection) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, DevtoolsEvent::WebSocketFrame { direction: d, .. } if *d == direction))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_accessors() {
        let cap = Capture {
            domain: "x.org".into(),
            outcome: LoadOutcome::Loaded,
            finished_at_ms: 1000,
            events: vec![
                DevtoolsEvent::WebSocketCreated {
                    url: "wss://p/".into(),
                    at_ms: 10,
                },
                DevtoolsEvent::WebSocketFrame {
                    url: "wss://p/".into(),
                    direction: FrameDirection::Sent,
                    payload: "{}".into(),
                    at_ms: 20,
                },
                DevtoolsEvent::WebSocketFrame {
                    url: "wss://p/".into(),
                    direction: FrameDirection::Received,
                    payload: "{}".into(),
                    at_ms: 30,
                },
            ],
            wasm_dumps: vec![vec![0, 1, 2]],
            final_html: String::new(),
        };
        assert_eq!(cap.websocket_urls(), vec!["wss://p/"]);
        assert!(cap.has_wasm());
        assert_eq!(cap.frame_count(FrameDirection::Sent), 1);
        assert_eq!(cap.frame_count(FrameDirection::Received), 1);
    }
}
