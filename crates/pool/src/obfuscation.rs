//! The job-blob obfuscation countermeasure.
//!
//! From §4.1: *"We found that Coinhive alters the block header contained
//! in the PoW inputs before sending them to the users which the web miner
//! reverts deep within its WebAssembly. [...] A simple XOR with a fixed
//! value at a fixed offset."* The point of the measure is that a generic
//! Monero miner pointed at Coinhive's pool would hash the wrong bytes and
//! produce only invalid shares; only Coinhive's own web miner (which knows
//! the fixed value) works.
//!
//! We reproduce it exactly: an 8-byte XOR at a fixed offset inside the
//! serialized blob (landing within the previous-block-id field for
//! 2018-era field widths). The operation is an involution, so the same
//! function obfuscates and reverts.

/// Byte offset of the XOR within the blob. For 2018-era blobs (1-byte
/// version varints + 5-byte timestamp varint) this lands inside the
/// 32-byte prev-id field, i.e. "in the block header" as the paper puts it.
pub const XOR_OFFSET: usize = 11;

/// The fixed 8-byte XOR value.
pub const XOR_VALUE: [u8; 8] = [0xc0, 0x1f, 0xee, 0x15, 0x90, 0x0d, 0xca, 0xfe];

/// Applies (or reverts — the operation is an involution) the obfuscation
/// in place. Blobs shorter than `XOR_OFFSET + 8` are XORed as far as they
/// reach, so the function is total.
pub fn xor_blob(blob: &mut [u8]) {
    for (i, &v) in XOR_VALUE.iter().enumerate() {
        if let Some(b) = blob.get_mut(XOR_OFFSET + i) {
            *b ^= v;
        }
    }
}

/// Convenience: returns an obfuscated copy.
pub fn obfuscated(blob: &[u8]) -> Vec<u8> {
    let mut out = blob.to_vec();
    xor_blob(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_chain::HashingBlob;
    use minedig_primitives::Hash32;
    use proptest::prelude::*;

    #[test]
    fn is_an_involution() {
        let original: Vec<u8> = (0..80u8).collect();
        let mut blob = original.clone();
        xor_blob(&mut blob);
        assert_ne!(blob, original);
        xor_blob(&mut blob);
        assert_eq!(blob, original);
    }

    #[test]
    fn changes_exactly_eight_bytes() {
        let original = vec![0u8; 80];
        let obf = obfuscated(&original);
        let changed: Vec<usize> = (0..80).filter(|&i| obf[i] != original[i]).collect();
        assert_eq!(changed, (XOR_OFFSET..XOR_OFFSET + 8).collect::<Vec<_>>());
    }

    #[test]
    fn lands_inside_prev_id_for_2018_blobs() {
        let blob = HashingBlob {
            major_version: 7,
            minor_version: 7,
            timestamp: 1_526_342_400,
            prev_id: Hash32::keccak(b"prev"),
            nonce: 0,
            merkle_root: Hash32::keccak(b"root"),
            tx_count: 5,
        };
        // prev_id occupies bytes [7, 39) for this blob (3 header varint
        // bytes for versions + 5 for the timestamp… compute exactly).
        let bytes = blob.to_bytes();
        let prev_start = bytes.len() - (32 + 4 + 32 + 1); // prev+nonce+root+txcount(1)
        assert!(XOR_OFFSET >= prev_start);
        assert!(XOR_OFFSET + 8 <= prev_start + 32);
        // The obfuscated blob still parses (structure intact) but reports
        // a wrong prev id — hashing it yields garbage shares.
        let obf = obfuscated(&bytes);
        let parsed = HashingBlob::parse(&obf).unwrap();
        assert_ne!(parsed.prev_id, blob.prev_id);
        assert_eq!(parsed.merkle_root, blob.merkle_root);
    }

    #[test]
    fn short_blob_does_not_panic() {
        let mut tiny = vec![1u8; 5];
        xor_blob(&mut tiny);
        assert_eq!(tiny, vec![1u8; 5]); // untouched: XOR starts at offset 11
        let mut partial = vec![1u8; XOR_OFFSET + 3];
        xor_blob(&mut partial);
        assert_ne!(partial[XOR_OFFSET], 1);
    }

    proptest! {
        #[test]
        fn involution_on_arbitrary_blobs(blob in prop::collection::vec(any::<u8>(), 0..128)) {
            let mut twice = blob.clone();
            xor_blob(&mut twice);
            xor_blob(&mut twice);
            prop_assert_eq!(twice, blob);
        }
    }
}
