//! Share accounting and the 70/30 revenue split.
//!
//! §4: *"Eventually, Coinhive pays their users 70% of the block reward and
//! keeps the remaining 30%."* Each accepted share credits its difficulty
//! as "hashes"; when the pool wins a block, the user share of the reward
//! is distributed pro-rata over the hashes credited since the previous
//! block (a PPLNS-flavoured scheme — the real Coinhive paid per-hash at a
//! posted rate, which averages out to the same split; see DESIGN.md).

use crate::protocol::Token;
use std::collections::HashMap;

/// Per-token and pool-level balances.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    /// Hashes credited since the last distributed block.
    pending_hashes: HashMap<Token, u64>,
    /// Lifetime hashes credited, per token.
    lifetime_hashes: HashMap<Token, u64>,
    /// Paid-out balances in atomic units.
    balances: HashMap<Token, u64>,
    /// The pool's accumulated fee take, in atomic units.
    pool_balance: u64,
    /// Shares accepted / rejected counters.
    accepted: u64,
    rejected: u64,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Credits an accepted share of the given difficulty to `token` and
    /// returns the token's lifetime credited hashes.
    pub fn credit_share(&mut self, token: &Token, difficulty: u64) -> u64 {
        self.accepted += 1;
        *self.pending_hashes.entry(token.clone()).or_insert(0) += difficulty;
        let life = self.lifetime_hashes.entry(token.clone()).or_insert(0);
        *life += difficulty;
        *life
    }

    /// Records a rejected share.
    pub fn record_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Distributes a block reward: `fee_fraction` to the pool, the rest
    /// pro-rata over pending hashes (which are then reset). With no
    /// pending hashes the whole reward goes to the pool (self-mined).
    pub fn distribute(&mut self, reward: u64, fee_fraction: f64) {
        assert!((0.0..=1.0).contains(&fee_fraction));
        let total_pending: u64 = self.pending_hashes.values().sum();
        if total_pending == 0 {
            self.pool_balance += reward;
            return;
        }
        let fee = (reward as f64 * fee_fraction) as u64;
        let user_pot = reward - fee;
        let mut distributed = 0u64;
        // Deterministic order for reproducible payouts.
        let mut entries: Vec<(Token, u64)> = self.pending_hashes.drain().collect();
        entries.sort();
        for (token, hashes) in &entries {
            let cut = (user_pot as u128 * *hashes as u128 / total_pending as u128) as u64;
            *self.balances.entry(token.clone()).or_insert(0) += cut;
            distributed += cut;
        }
        // Rounding dust goes to the pool, as it would in practice.
        self.pool_balance += fee + (user_pot - distributed);
    }

    /// Balance of a token in atomic units.
    pub fn balance(&self, token: &Token) -> u64 {
        self.balances.get(token).copied().unwrap_or(0)
    }

    /// Lifetime hashes credited to a token.
    pub fn lifetime_hashes(&self, token: &Token) -> u64 {
        self.lifetime_hashes.get(token).copied().unwrap_or(0)
    }

    /// The pool's fee take in atomic units.
    pub fn pool_balance(&self) -> u64 {
        self.pool_balance
    }

    /// (accepted, rejected) share counters.
    pub fn share_counts(&self) -> (u64, u64) {
        (self.accepted, self.rejected)
    }

    /// Sum of all user balances (for conservation checks).
    pub fn total_user_balance(&self) -> u64 {
        self.balances.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn credit_accumulates() {
        let mut l = Ledger::new();
        let t = Token::from_index(1);
        assert_eq!(l.credit_share(&t, 16), 16);
        assert_eq!(l.credit_share(&t, 16), 32);
        assert_eq!(l.lifetime_hashes(&t), 32);
        assert_eq!(l.share_counts(), (2, 0));
    }

    #[test]
    fn distribution_respects_70_30() {
        let mut l = Ledger::new();
        let t = Token::from_index(1);
        l.credit_share(&t, 100);
        l.distribute(1_000_000, 0.30);
        assert_eq!(l.balance(&t), 700_000);
        assert_eq!(l.pool_balance(), 300_000);
    }

    #[test]
    fn distribution_is_pro_rata() {
        let mut l = Ledger::new();
        let (a, b) = (Token::from_index(1), Token::from_index(2));
        l.credit_share(&a, 300);
        l.credit_share(&b, 100);
        l.distribute(1_000_000, 0.30);
        assert_eq!(l.balance(&a), 525_000); // 700k * 3/4
        assert_eq!(l.balance(&b), 175_000); // 700k * 1/4
    }

    #[test]
    fn pending_resets_between_blocks() {
        let mut l = Ledger::new();
        let t = Token::from_index(1);
        l.credit_share(&t, 10);
        l.distribute(100, 0.0);
        let before = l.balance(&t);
        l.distribute(100, 0.0); // no pending → pool takes it
        assert_eq!(l.balance(&t), before);
        assert_eq!(l.pool_balance(), 100);
    }

    #[test]
    fn self_mined_block_goes_to_pool() {
        let mut l = Ledger::new();
        l.distribute(42, 0.30);
        assert_eq!(l.pool_balance(), 42);
    }

    #[test]
    fn rejected_shares_counted() {
        let mut l = Ledger::new();
        l.record_rejected();
        l.record_rejected();
        assert_eq!(l.share_counts(), (0, 2));
    }

    proptest! {
        #[test]
        fn reward_is_conserved(
            reward in 0u64..=10_000_000_000_000,
            hashes in prop::collection::vec(1u64..1_000_000, 1..20),
            fee in 0.0f64..=1.0,
        ) {
            let mut l = Ledger::new();
            for (i, h) in hashes.iter().enumerate() {
                l.credit_share(&Token::from_index(i as u64), *h);
            }
            l.distribute(reward, fee);
            prop_assert_eq!(l.total_user_balance() + l.pool_balance(), reward);
        }

        #[test]
        fn user_pot_close_to_one_minus_fee(
            reward in 1_000_000u64..=10_000_000_000_000,
            fee in 0.0f64..=1.0,
        ) {
            let mut l = Ledger::new();
            l.credit_share(&Token::from_index(0), 10);
            l.distribute(reward, fee);
            let user_share = l.total_user_balance() as f64 / reward as f64;
            prop_assert!((user_share - (1.0 - fee)).abs() < 1e-6);
        }
    }
}
