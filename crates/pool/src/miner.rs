//! The miner client.
//!
//! This is the counterpart of Coinhive's web miner and of the paper's
//! standalone resolver (§4.1: *"we replicate the working principle of the
//! web miner in a non-web implementation"*): authenticate with a token,
//! fetch a job, revert the blob obfuscation, grind nonces with the slow
//! hash, and submit results that meet the share target. The server credits
//! `share_difficulty` hashes per accepted share, which is exactly the
//! progress metric the short-link service displays.

use crate::obfuscation;
use crate::protocol::{ClientMsg, Job, ServerMsg, Token};
use minedig_chain::blob::HashingBlob;
use minedig_net::aio::recv_ready;
use minedig_net::transport::{Transport, TransportError};
use minedig_pow::{check_hash, slow_hash, Variant};
use minedig_primitives::aexec::Ctx;

/// Errors from the mining client.
#[derive(Debug, Clone, PartialEq)]
pub enum MinerError {
    /// Transport failure.
    Transport(TransportError),
    /// Server replied with an error message.
    Server(String),
    /// Server replied with something unexpected.
    Protocol(String),
    /// The server shed the same request [`MAX_SHED_RETRIES`] times in a
    /// row — overload outlasted the client's patience. Retryable at the
    /// session level (a reconnect re-offers the work later).
    Overloaded,
}

impl std::fmt::Display for MinerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinerError::Transport(e) => write!(f, "miner transport error: {e}"),
            MinerError::Server(e) => write!(f, "pool error: {e}"),
            MinerError::Protocol(e) => write!(f, "protocol violation: {e}"),
            MinerError::Overloaded => f.write_str("pool shed the request repeatedly"),
        }
    }
}

/// Consecutive [`ServerMsg::Shed`] replies a client re-offers one request
/// through before giving up with [`MinerError::Overloaded`]. Bounded so a
/// frozen-clock server (whose bucket never refills) cannot trap the
/// client in an infinite offer loop.
pub const MAX_SHED_RETRIES: u32 = 64;

impl std::error::Error for MinerError {}

impl From<TransportError> for MinerError {
    fn from(e: TransportError) -> Self {
        MinerError::Transport(e)
    }
}

/// Statistics from a mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiningReport {
    /// Nonce attempts actually hashed locally.
    pub hashes_computed: u64,
    /// Shares submitted.
    pub shares_submitted: u64,
    /// Shares the server accepted.
    pub shares_accepted: u64,
    /// Hashes the server has credited to our token (its own accounting).
    pub hashes_credited: u64,
}

/// A blocking miner client over any [`Transport`].
pub struct MinerClient<T: Transport> {
    transport: T,
    token: Token,
    variant: Variant,
    /// Whether to revert the pool's XOR countermeasure before hashing.
    /// The genuine web miner does; a naive external miner does not (and
    /// gets every share rejected — the behaviour the paper describes).
    pub deobfuscate: bool,
}

impl<T: Transport> MinerClient<T> {
    /// Creates a client; call [`MinerClient::auth`] before mining.
    pub fn new(transport: T, token: Token, variant: Variant) -> MinerClient<T> {
        MinerClient {
            transport,
            token,
            variant,
            deobfuscate: true,
        }
    }

    fn request(&mut self, msg: &ClientMsg) -> Result<ServerMsg, MinerError> {
        // A shed is the one reply that is about the request *rate*, not
        // the request: re-offer the same message (the server's bucket
        // refills as its clock advances), bounded so overload that never
        // clears surfaces as an error instead of a livelock. Sheds are
        // absorbed here so the auth/job/submit state machines above never
        // see them — without admission control this loop runs exactly
        // once, byte-identical to the pre-shed client.
        for _ in 0..=MAX_SHED_RETRIES {
            self.transport.send(&msg.encode())?;
            let raw = self.transport.recv()?;
            match ServerMsg::decode(&raw).map_err(|e| MinerError::Protocol(e.to_string()))? {
                ServerMsg::Shed { .. } => continue,
                other => return Ok(other),
            }
        }
        Err(MinerError::Overloaded)
    }

    /// Authenticates; returns hashes already credited to the token.
    pub fn auth(&mut self) -> Result<u64, MinerError> {
        match self.request(&ClientMsg::Auth {
            token: self.token.clone(),
        })? {
            ServerMsg::Authed { hashes } => Ok(hashes),
            ServerMsg::Error { reason } => Err(MinerError::Server(reason)),
            other => Err(MinerError::Protocol(format!(
                "expected authed, got {other:?}"
            ))),
        }
    }

    /// Fetches a job.
    pub fn get_job(&mut self) -> Result<Job, MinerError> {
        match self.request(&ClientMsg::GetJob)? {
            ServerMsg::Job(job) => Ok(job),
            ServerMsg::Error { reason } => Err(MinerError::Server(reason)),
            other => Err(MinerError::Protocol(format!("expected job, got {other:?}"))),
        }
    }

    /// Mines until the server has credited at least `target_hashes`
    /// (the short-link resolution condition), or `max_local_hashes` local
    /// attempts have been spent. Returns the run report.
    pub fn mine_until_credited(
        &mut self,
        target_hashes: u64,
        max_local_hashes: u64,
    ) -> Result<MiningReport, MinerError> {
        let mut report = MiningReport::default();
        let mut credited = 0u64;
        'outer: while credited < target_hashes && report.hashes_computed < max_local_hashes {
            let job = self.get_job()?;
            let mut blob = job
                .blob_bytes()
                .map_err(|e| MinerError::Protocol(e.to_string()))?;
            if self.deobfuscate {
                obfuscation::xor_blob(&mut blob);
            }
            let parsed = HashingBlob::parse(&blob)
                .map_err(|e| MinerError::Protocol(format!("unparseable blob: {e}")))?;
            // Grind a bounded batch per job, then refresh the job (real
            // miners rotate jobs; this also bounds staleness).
            for nonce in 0..4096u32 {
                if report.hashes_computed >= max_local_hashes {
                    break 'outer;
                }
                let attempt = parsed.with_nonce(nonce).to_bytes();
                let hash = slow_hash(&attempt, self.variant);
                report.hashes_computed += 1;
                if check_hash(&hash, job.share_difficulty) {
                    report.shares_submitted += 1;
                    match self.request(&ClientMsg::Submit {
                        job_id: job.job_id.clone(),
                        nonce,
                        result: hash,
                    })? {
                        ServerMsg::HashAccepted { hashes } => {
                            report.shares_accepted += 1;
                            credited = hashes;
                            if credited >= target_hashes {
                                break 'outer;
                            }
                        }
                        ServerMsg::Error { .. } => {
                            // Rejected share (stale job, countermeasure,
                            // etc.) — fetch a fresh job.
                            continue 'outer;
                        }
                        other => {
                            return Err(MinerError::Protocol(format!(
                                "expected accept/error, got {other:?}"
                            )))
                        }
                    }
                }
            }
        }
        report.hashes_credited = credited;
        Ok(report)
    }

    /// Async counterpart of `request`: the send goes out eagerly (the
    /// request frames are tiny), the reply is awaited through the
    /// executor's readiness sweep so other tasks run while the pool
    /// thinks.
    async fn request_io(&mut self, ctx: &Ctx, msg: &ClientMsg) -> Result<ServerMsg, MinerError> {
        // Same bounded shed re-offer as the blocking `request`, so the
        // two clients stay step-for-step identical under load shedding.
        for _ in 0..=MAX_SHED_RETRIES {
            self.transport.send(&msg.encode())?;
            let raw = ctx.io(recv_ready(&mut self.transport)).await?;
            match ServerMsg::decode(&raw).map_err(|e| MinerError::Protocol(e.to_string()))? {
                ServerMsg::Shed { .. } => continue,
                other => return Ok(other),
            }
        }
        Err(MinerError::Overloaded)
    }

    /// [`MinerClient::auth`] on the cooperative executor.
    pub async fn auth_io(&mut self, ctx: &Ctx) -> Result<u64, MinerError> {
        let msg = ClientMsg::Auth {
            token: self.token.clone(),
        };
        match self.request_io(ctx, &msg).await? {
            ServerMsg::Authed { hashes } => Ok(hashes),
            ServerMsg::Error { reason } => Err(MinerError::Server(reason)),
            other => Err(MinerError::Protocol(format!(
                "expected authed, got {other:?}"
            ))),
        }
    }

    /// [`MinerClient::mine_until_credited`] on the cooperative executor.
    /// Step-for-step the same loop — job refresh cadence, nonce order,
    /// budget checks, share handling — so reports are bit-identical to
    /// the blocking client's for the same pool state.
    pub async fn mine_until_credited_io(
        &mut self,
        ctx: &Ctx,
        target_hashes: u64,
        max_local_hashes: u64,
    ) -> Result<MiningReport, MinerError> {
        let mut report = MiningReport::default();
        let mut credited = 0u64;
        'outer: while credited < target_hashes && report.hashes_computed < max_local_hashes {
            let job = match self.request_io(ctx, &ClientMsg::GetJob).await? {
                ServerMsg::Job(job) => job,
                ServerMsg::Error { reason } => return Err(MinerError::Server(reason)),
                other => return Err(MinerError::Protocol(format!("expected job, got {other:?}"))),
            };
            let mut blob = job
                .blob_bytes()
                .map_err(|e| MinerError::Protocol(e.to_string()))?;
            if self.deobfuscate {
                obfuscation::xor_blob(&mut blob);
            }
            let parsed = HashingBlob::parse(&blob)
                .map_err(|e| MinerError::Protocol(format!("unparseable blob: {e}")))?;
            for nonce in 0..4096u32 {
                if report.hashes_computed >= max_local_hashes {
                    break 'outer;
                }
                let attempt = parsed.with_nonce(nonce).to_bytes();
                let hash = slow_hash(&attempt, self.variant);
                report.hashes_computed += 1;
                if check_hash(&hash, job.share_difficulty) {
                    report.shares_submitted += 1;
                    let submit = ClientMsg::Submit {
                        job_id: job.job_id.clone(),
                        nonce,
                        result: hash,
                    };
                    match self.request_io(ctx, &submit).await? {
                        ServerMsg::HashAccepted { hashes } => {
                            report.shares_accepted += 1;
                            credited = hashes;
                            if credited >= target_hashes {
                                break 'outer;
                            }
                        }
                        ServerMsg::Error { .. } => continue 'outer,
                        other => {
                            return Err(MinerError::Protocol(format!(
                                "expected accept/error, got {other:?}"
                            )))
                        }
                    }
                }
            }
        }
        report.hashes_credited = credited;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Pool, PoolConfig};
    use minedig_chain::netsim::TipInfo;
    use minedig_chain::tx::Transaction;
    use minedig_net::transport::channel_pair;
    use minedig_primitives::Hash32;

    fn serve_pool(
        share_difficulty: u64,
    ) -> (
        Pool,
        std::thread::JoinHandle<()>,
        MinerClient<minedig_net::transport::ChannelTransport>,
    ) {
        let pool = Pool::new(PoolConfig {
            share_difficulty,
            ..PoolConfig::default()
        });
        pool.announce_tip(&TipInfo {
            height: 1,
            prev_id: Hash32::keccak(b"tip"),
            prev_timestamp: 100,
            reward: 1_000_000,
            difficulty: 1_000,
            mempool: vec![Transaction::transfer(Hash32::keccak(b"t"))],
        });
        let (client_t, mut server_t) = channel_pair();
        let p2 = pool.clone();
        let handle = std::thread::spawn(move || p2.serve(&mut server_t, 0, || 120));
        let client = MinerClient::new(client_t, Token::from_index(1), Variant::Test);
        (pool, handle, client)
    }

    #[test]
    fn auth_then_mine_to_target() {
        let (pool, handle, mut client) = serve_pool(4);
        assert_eq!(client.auth().unwrap(), 0);
        let report = client.mine_until_credited(16, 10_000).unwrap();
        assert!(report.hashes_credited >= 16);
        assert!(report.shares_accepted >= 4); // 16 credited / 4 per share
        assert!(report.hashes_computed >= report.shares_accepted);
        drop(client);
        handle.join().unwrap();
        let token = Token::from_index(1);
        assert_eq!(
            pool.ledger().lifetime_hashes(&token),
            report.hashes_credited
        );
    }

    #[test]
    fn naive_miner_defeated_by_countermeasure() {
        let (pool, handle, mut client) = serve_pool(1);
        client.deobfuscate = false; // generic miner unaware of the XOR
        client.auth().unwrap();
        let report = client.mine_until_credited(4, 600).unwrap();
        assert_eq!(report.shares_accepted, 0);
        assert_eq!(report.hashes_credited, 0);
        // Every hash met difficulty 1 and was submitted, yet all rejected.
        assert!(report.shares_submitted > 0);
        drop(client);
        handle.join().unwrap();
        let (_, rejected) = pool.ledger().share_counts();
        assert_eq!(rejected, report.shares_submitted);
    }

    #[test]
    fn async_mining_matches_the_blocking_client() {
        // Two identical pool/server pairs; one mined by the blocking
        // client, one by the async client on the cooperative executor.
        // Same pool state + same loop ⇒ bit-identical reports & ledgers.
        let (pool_sync, handle_sync, mut blocking) = serve_pool(4);
        let (pool_async, handle_async, mut asynced) = serve_pool(4);
        blocking.auth().unwrap();
        let sync_report = blocking.mine_until_credited(16, 10_000).unwrap();
        let async_report = minedig_primitives::aexec::block_on(|ctx| async move {
            let credited = asynced.auth_io(&ctx).await.unwrap();
            assert_eq!(credited, 0);
            asynced
                .mine_until_credited_io(&ctx, 16, 10_000)
                .await
                .unwrap()
        });
        assert_eq!(sync_report, async_report);
        drop(blocking);
        handle_sync.join().unwrap();
        handle_async.join().unwrap();
        let token = Token::from_index(1);
        assert_eq!(
            pool_sync.ledger().lifetime_hashes(&token),
            pool_async.ledger().lifetime_hashes(&token)
        );
    }

    #[test]
    fn mining_without_auth_fails() {
        let (_pool, handle, mut client) = serve_pool(1);
        let err = client.get_job().unwrap_err();
        assert!(matches!(err, MinerError::Server(_)));
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn miner_rides_out_sheds_transparently() {
        use minedig_primitives::{Admission, AdmissionConfig};
        use parking_lot::Mutex;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        // One template version regardless of clock, so the gated run (whose
        // clock advances per request) grinds the same blobs as the plain
        // frozen-clock reference run.
        let make_pool = || {
            let pool = Pool::new(PoolConfig {
                share_difficulty: 4,
                max_templates_per_height: 1,
                ..PoolConfig::default()
            });
            pool.announce_tip(&TipInfo {
                height: 1,
                prev_id: Hash32::keccak(b"tip"),
                prev_timestamp: 100,
                reward: 1_000_000,
                difficulty: 1_000,
                mempool: vec![Transaction::transfer(Hash32::keccak(b"t"))],
            });
            pool
        };

        // Reference: no admission control.
        let pool = make_pool();
        let (client_t, mut server_t) = channel_pair();
        let p2 = pool.clone();
        let handle = std::thread::spawn(move || p2.serve(&mut server_t, 0, || 120));
        let mut plain = MinerClient::new(client_t, Token::from_index(1), Variant::Test);
        plain.auth().unwrap();
        let reference = plain.mine_until_credited(16, 10_000).unwrap();
        drop(plain);
        handle.join().unwrap();

        // Gated: bucket of one token refilling every other request, so
        // roughly half the offers are shed and silently re-offered.
        let pool = make_pool();
        let admission = Arc::new(Mutex::new(Admission::new(AdmissionConfig {
            burst: 1,
            refill_per_tick: 1,
            queue_cap: 0,
        })));
        let (client_t, mut server_t) = channel_pair();
        let p2 = pool.clone();
        let adm = admission.clone();
        let ticks = Arc::new(AtomicU64::new(0));
        let handle = std::thread::spawn(move || {
            p2.serve_with_admission(
                &mut server_t,
                0,
                move || ticks.fetch_add(1, Ordering::Relaxed) / 2,
                Some(&adm),
            );
        });
        let mut gated = MinerClient::new(client_t, Token::from_index(1), Variant::Test);
        gated.auth().unwrap();
        let report = gated.mine_until_credited(16, 10_000).unwrap();
        drop(gated);
        handle.join().unwrap();

        assert_eq!(report, reference, "sheds must not perturb the mining run");
        let stats = *admission.lock().stats();
        assert!(stats.shed > 0, "the throttle must actually have fired");
        assert!(stats.balanced(), "{stats:?}");
        assert_eq!(
            pool.ledger().lifetime_hashes(&Token::from_index(1)),
            report.hashes_credited
        );
    }

    #[test]
    fn persistent_overload_surfaces_as_error() {
        use minedig_primitives::{Admission, AdmissionConfig};
        use parking_lot::Mutex;
        use std::sync::Arc;

        let pool = Pool::new(PoolConfig::default());
        pool.announce_tip(&TipInfo {
            height: 1,
            prev_id: Hash32::keccak(b"tip"),
            prev_timestamp: 100,
            reward: 1_000_000,
            difficulty: 1_000,
            mempool: vec![],
        });
        // Frozen clock: the bucket never refills, so after the single
        // burst token every offer is shed and the client must give up
        // instead of spinning forever.
        let admission = Arc::new(Mutex::new(Admission::new(AdmissionConfig {
            burst: 1,
            refill_per_tick: 1,
            queue_cap: 0,
        })));
        let (client_t, mut server_t) = channel_pair();
        let p2 = pool.clone();
        let adm = admission.clone();
        let handle = std::thread::spawn(move || {
            p2.serve_with_admission(&mut server_t, 0, || 120, Some(&adm));
        });
        let mut client = MinerClient::new(client_t, Token::from_index(1), Variant::Test);
        client.auth().unwrap(); // consumes the only token
        assert_eq!(client.get_job().unwrap_err(), MinerError::Overloaded);
        drop(client);
        handle.join().unwrap();
        let stats = *admission.lock().stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.shed, u64::from(MAX_SHED_RETRIES) + 1);
        assert!(stats.balanced());
    }

    #[test]
    fn local_hash_budget_is_respected() {
        let (_pool, handle, mut client) = serve_pool(u64::MAX); // impossible target
        client.auth().unwrap();
        let report = client.mine_until_credited(1, 50).unwrap();
        assert_eq!(report.hashes_computed, 50);
        assert_eq!(report.shares_accepted, 0);
        drop(client);
        handle.join().unwrap();
    }
}
