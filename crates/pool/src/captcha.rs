//! The PoW captcha service.
//!
//! §1/§4 mention Coinhive's side businesses: *"Apart from offering this
//! API, Coinhive offers e.g., a Captcha service and a short link
//! forwarding service."* The captcha replaces image puzzles with hash
//! computation: a site embeds a widget, the visitor's browser mines N
//! hashes against the pool (credited to the site's token), and the
//! service signs a one-time verification token the site's backend can
//! check — monetized human verification.

use crate::protocol::Token;
use minedig_primitives::Hash32;
use std::collections::HashMap;

/// A pending captcha challenge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Challenge {
    /// Challenge id (embedded in the widget).
    pub id: Hash32,
    /// Site token credited for the work.
    pub site: Token,
    /// Hashes the visitor must get credited.
    pub required_hashes: u64,
    /// Virtual creation time (for expiry).
    pub created_at: u64,
}

/// A verification receipt, redeemable exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// The receipt token the page posts to the site backend.
    pub token: Hash32,
    /// The challenge it proves.
    pub challenge: Hash32,
}

/// Errors from the captcha service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaptchaError {
    /// Unknown challenge id.
    UnknownChallenge,
    /// Challenge expired before completion.
    Expired,
    /// Not enough hashes credited for this challenge.
    NotEnoughHashes {
        /// Hashes still missing.
        missing: u64,
    },
    /// Receipt was already redeemed (or never issued).
    BadReceipt,
}

impl std::fmt::Display for CaptchaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptchaError::UnknownChallenge => f.write_str("unknown captcha challenge"),
            CaptchaError::Expired => f.write_str("captcha challenge expired"),
            CaptchaError::NotEnoughHashes { missing } => {
                write!(f, "captcha needs {missing} more hashes")
            }
            CaptchaError::BadReceipt => f.write_str("invalid or already-used receipt"),
        }
    }
}

impl std::error::Error for CaptchaError {}

/// The captcha service.
pub struct CaptchaService {
    /// Secret mixed into receipt tokens (a real service would use an HMAC
    /// key; the construction is the same).
    secret: u64,
    /// Challenge lifetime in virtual seconds.
    ttl: u64,
    challenges: HashMap<Hash32, Challenge>,
    /// Issued-but-unredeemed receipts.
    receipts: HashMap<Hash32, Hash32>,
    counter: u64,
}

impl CaptchaService {
    /// Creates a service with the given receipt secret and challenge TTL.
    pub fn new(secret: u64, ttl: u64) -> CaptchaService {
        CaptchaService {
            secret,
            ttl,
            challenges: HashMap::new(),
            receipts: HashMap::new(),
            counter: 0,
        }
    }

    /// Issues a challenge for a site widget.
    pub fn issue(&mut self, site: Token, required_hashes: u64, now: u64) -> Challenge {
        self.counter += 1;
        let mut input = Vec::new();
        input.extend_from_slice(&self.secret.to_le_bytes());
        input.extend_from_slice(&self.counter.to_le_bytes());
        input.extend_from_slice(site.0.as_bytes());
        let challenge = Challenge {
            id: Hash32::keccak(&input),
            site,
            required_hashes,
            created_at: now,
        };
        self.challenges.insert(challenge.id, challenge.clone());
        challenge
    }

    /// Completes a challenge with `credited_hashes` of pool-verified work,
    /// returning a one-time receipt.
    pub fn complete(
        &mut self,
        challenge_id: &Hash32,
        credited_hashes: u64,
        now: u64,
    ) -> Result<Receipt, CaptchaError> {
        let challenge = self
            .challenges
            .get(challenge_id)
            .ok_or(CaptchaError::UnknownChallenge)?;
        if now > challenge.created_at + self.ttl {
            self.challenges.remove(challenge_id);
            return Err(CaptchaError::Expired);
        }
        if credited_hashes < challenge.required_hashes {
            return Err(CaptchaError::NotEnoughHashes {
                missing: challenge.required_hashes - credited_hashes,
            });
        }
        let mut input = Vec::new();
        input.extend_from_slice(&self.secret.to_le_bytes());
        input.extend_from_slice(&challenge_id.0);
        input.extend_from_slice(&now.to_le_bytes());
        let token = Hash32::keccak(&input);
        self.receipts.insert(token, *challenge_id);
        self.challenges.remove(challenge_id);
        Ok(Receipt {
            token,
            challenge: *challenge_id,
        })
    }

    /// Site-backend verification: valid exactly once.
    pub fn verify(&mut self, receipt: &Receipt) -> Result<(), CaptchaError> {
        match self.receipts.remove(&receipt.token) {
            Some(challenge) if challenge == receipt.challenge => Ok(()),
            _ => Err(CaptchaError::BadReceipt),
        }
    }

    /// Number of outstanding challenges (diagnostics).
    pub fn pending(&self) -> usize {
        self.challenges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> CaptchaService {
        CaptchaService::new(0x5ec7e7, 300)
    }

    #[test]
    fn happy_path_issue_complete_verify() {
        let mut s = service();
        let ch = s.issue(Token::from_index(1), 256, 1_000);
        assert_eq!(s.pending(), 1);
        let receipt = s.complete(&ch.id, 256, 1_050).unwrap();
        assert_eq!(s.pending(), 0);
        s.verify(&receipt).unwrap();
    }

    #[test]
    fn receipts_are_single_use() {
        let mut s = service();
        let ch = s.issue(Token::from_index(1), 64, 0);
        let receipt = s.complete(&ch.id, 64, 10).unwrap();
        s.verify(&receipt).unwrap();
        assert_eq!(s.verify(&receipt), Err(CaptchaError::BadReceipt));
    }

    #[test]
    fn insufficient_hashes_rejected() {
        let mut s = service();
        let ch = s.issue(Token::from_index(1), 1_024, 0);
        assert_eq!(
            s.complete(&ch.id, 1_000, 10),
            Err(CaptchaError::NotEnoughHashes { missing: 24 })
        );
        // Still pending; can retry after more work.
        assert!(s.complete(&ch.id, 1_024, 20).is_ok());
    }

    #[test]
    fn expiry_is_enforced() {
        let mut s = service();
        let ch = s.issue(Token::from_index(1), 64, 1_000);
        assert_eq!(s.complete(&ch.id, 64, 1_301), Err(CaptchaError::Expired));
        // Expired challenges are dropped entirely.
        assert_eq!(
            s.complete(&ch.id, 64, 1_302),
            Err(CaptchaError::UnknownChallenge)
        );
    }

    #[test]
    fn forged_receipts_fail() {
        let mut s = service();
        let ch = s.issue(Token::from_index(1), 64, 0);
        let real = s.complete(&ch.id, 64, 10).unwrap();
        let forged = Receipt {
            token: Hash32::keccak(b"forged"),
            challenge: real.challenge,
        };
        assert_eq!(s.verify(&forged), Err(CaptchaError::BadReceipt));
        // The real one still works (forgery attempt must not burn it).
        s.verify(&real).unwrap();
    }

    #[test]
    fn challenges_are_unique() {
        let mut s = service();
        let a = s.issue(Token::from_index(1), 64, 0);
        let b = s.issue(Token::from_index(1), 64, 0);
        assert_ne!(a.id, b.id);
    }
}
