//! The pool's JSON wire protocol.
//!
//! Modeled on the Coinhive WebSocket protocol the paper observes from
//! instrumented Chrome sessions (§3.2) and speaks directly in §4: the
//! client authenticates with its customer token, asks for jobs, and
//! submits share results; the server acknowledges accepted hashes (which
//! is how the short-link progress bar advances).

use minedig_net::json::{Number, Value};
use minedig_primitives::{from_hex, to_hex, Hash32};

/// A Coinhive-style customer token ("site key"): identifies who is
/// credited for submitted hashes. The paper treats users and tokens as
/// synonymous (§4.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub String);

impl Token {
    /// Derives a deterministic token from an index, in the style of the
    /// 32-character site keys Coinhive issued.
    pub fn from_index(index: u64) -> Token {
        let h = Hash32::keccak(&index.to_le_bytes());
        Token(h.to_hex()[..32].to_string())
    }
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A mining job as sent to clients.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Opaque job id, echoed back in submissions.
    pub job_id: String,
    /// Hex-encoded (and, when the countermeasure is on, obfuscated)
    /// hashing blob with the nonce field zeroed.
    pub blob_hex: String,
    /// Share difficulty the result hash must satisfy.
    pub share_difficulty: u64,
    /// Chain height this job mines.
    pub height: u64,
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMsg {
    /// Authenticate with a customer token.
    Auth {
        /// The customer token hashes are credited to.
        token: Token,
    },
    /// Request a (fresh) job.
    GetJob,
    /// Observer probe: read endpoint `endpoint`'s current job as of
    /// virtual time `now` without authenticating or mutating pool state.
    /// This is the wire form of the §4.2 poll sweep — what the paper's
    /// measurement client asks its 32 WebSocket endpoints every 500 ms.
    Peek {
        /// Endpoint index to observe.
        endpoint: u64,
        /// Observer's virtual timestamp (keys the job template).
        now: u64,
    },
    /// Submit a share result.
    Submit {
        /// Job id the share belongs to.
        job_id: String,
        /// The winning nonce.
        nonce: u32,
        /// The PoW hash of the (de-obfuscated) blob with that nonce.
        result: Hash32,
    },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMsg {
    /// Authentication accepted.
    Authed {
        /// Hashes already credited to this token (session-resume style).
        hashes: u64,
    },
    /// A job to work on.
    Job(Job),
    /// Share accepted; `hashes` is the cumulative credited count for this
    /// session's token (each share credits its difficulty).
    HashAccepted {
        /// Cumulative credited hashes.
        hashes: u64,
    },
    /// Protocol or validation error.
    Error {
        /// Human-readable reason.
        reason: String,
    },
    /// The server refused the request under load (admission control).
    /// Unlike [`ServerMsg::Error`] this is not a semantic refusal: the
    /// request was valid, the server just shed it, so clients classify
    /// it as retryable and back off at least `retry_after_ms`.
    Shed {
        /// Server's hint: clock units until the request would fit the
        /// admission rate again.
        retry_after_ms: u64,
    },
}

/// Encode/decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn need_str(v: &Value, key: &str) -> Result<String, ProtocolError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtocolError(format!("missing string field '{key}'")))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, ProtocolError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| ProtocolError(format!("missing integer field '{key}'")))
}

impl ClientMsg {
    /// Serializes to a JSON byte string.
    pub fn encode(&self) -> Vec<u8> {
        let v = match self {
            ClientMsg::Auth { token } => Value::object(vec![
                ("type", Value::str("auth")),
                ("token", Value::str(&token.0)),
            ]),
            ClientMsg::GetJob => Value::object(vec![("type", Value::str("get_job"))]),
            ClientMsg::Peek { endpoint, now } => Value::object(vec![
                ("type", Value::str("peek")),
                ("endpoint", Value::u64(*endpoint)),
                ("now", Value::u64(*now)),
            ]),
            ClientMsg::Submit {
                job_id,
                nonce,
                result,
            } => Value::object(vec![
                ("type", Value::str("submit")),
                ("job_id", Value::str(job_id)),
                ("nonce", Value::u64(*nonce as u64)),
                ("result", Value::str(&result.to_hex())),
            ]),
        };
        v.encode().into_bytes()
    }

    /// Parses a JSON byte string.
    pub fn decode(bytes: &[u8]) -> Result<ClientMsg, ProtocolError> {
        let text =
            std::str::from_utf8(bytes).map_err(|_| ProtocolError("not UTF-8".to_string()))?;
        let v = Value::parse(text).map_err(|e| ProtocolError(e.to_string()))?;
        match need_str(&v, "type")?.as_str() {
            "auth" => Ok(ClientMsg::Auth {
                token: Token(need_str(&v, "token")?),
            }),
            "get_job" => Ok(ClientMsg::GetJob),
            "peek" => Ok(ClientMsg::Peek {
                endpoint: need_u64(&v, "endpoint")?,
                now: need_u64(&v, "now")?,
            }),
            "submit" => {
                let nonce = need_u64(&v, "nonce")?;
                if nonce > u32::MAX as u64 {
                    return Err(ProtocolError("nonce out of range".to_string()));
                }
                let result = Hash32::from_hex(&need_str(&v, "result")?)
                    .ok_or_else(|| ProtocolError("bad result hash".to_string()))?;
                Ok(ClientMsg::Submit {
                    job_id: need_str(&v, "job_id")?,
                    nonce: nonce as u32,
                    result,
                })
            }
            other => Err(ProtocolError(format!("unknown client message '{other}'"))),
        }
    }
}

impl ServerMsg {
    /// Serializes to a JSON byte string.
    pub fn encode(&self) -> Vec<u8> {
        let v = match self {
            ServerMsg::Authed { hashes } => Value::object(vec![
                ("type", Value::str("authed")),
                ("hashes", Value::u64(*hashes)),
            ]),
            ServerMsg::Job(job) => Value::object(vec![
                ("type", Value::str("job")),
                ("job_id", Value::str(&job.job_id)),
                ("blob", Value::str(&job.blob_hex)),
                ("difficulty", Value::u64(job.share_difficulty)),
                ("height", Value::u64(job.height)),
            ]),
            ServerMsg::HashAccepted { hashes } => Value::object(vec![
                ("type", Value::str("hash_accepted")),
                ("hashes", Value::u64(*hashes)),
            ]),
            ServerMsg::Error { reason } => Value::object(vec![
                ("type", Value::str("error")),
                ("reason", Value::str(reason)),
            ]),
            ServerMsg::Shed { retry_after_ms } => Value::object(vec![
                ("type", Value::str("shed")),
                ("retry_after_ms", Value::u64(*retry_after_ms)),
            ]),
        };
        v.encode().into_bytes()
    }

    /// Parses a JSON byte string.
    pub fn decode(bytes: &[u8]) -> Result<ServerMsg, ProtocolError> {
        let text =
            std::str::from_utf8(bytes).map_err(|_| ProtocolError("not UTF-8".to_string()))?;
        let v = Value::parse(text).map_err(|e| ProtocolError(e.to_string()))?;
        match need_str(&v, "type")?.as_str() {
            "authed" => Ok(ServerMsg::Authed {
                hashes: need_u64(&v, "hashes")?,
            }),
            "job" => Ok(ServerMsg::Job(Job {
                job_id: need_str(&v, "job_id")?,
                blob_hex: need_str(&v, "blob")?,
                share_difficulty: need_u64(&v, "difficulty")?,
                height: need_u64(&v, "height")?,
            })),
            "hash_accepted" => Ok(ServerMsg::HashAccepted {
                hashes: need_u64(&v, "hashes")?,
            }),
            "error" => Ok(ServerMsg::Error {
                reason: need_str(&v, "reason")?,
            }),
            "shed" => Ok(ServerMsg::Shed {
                retry_after_ms: need_u64(&v, "retry_after_ms")?,
            }),
            other => Err(ProtocolError(format!("unknown server message '{other}'"))),
        }
    }
}

impl Job {
    /// Decodes the blob hex into bytes.
    pub fn blob_bytes(&self) -> Result<Vec<u8>, ProtocolError> {
        from_hex(&self.blob_hex).ok_or_else(|| ProtocolError("bad blob hex".to_string()))
    }

    /// Builds a job from raw blob bytes.
    pub fn from_blob(job_id: String, blob: &[u8], share_difficulty: u64, height: u64) -> Job {
        Job {
            job_id,
            blob_hex: to_hex(blob),
            share_difficulty,
            height,
        }
    }
}

/// Sanity check used by tests and the fuzzing harness: a `Number` decoded
/// from the wire must stay integral for difficulty fields.
pub fn number_is_integral(n: &Number) -> bool {
    !matches!(n, Number::F64(v) if v.fract() != 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn auth_roundtrip() {
        let m = ClientMsg::Auth {
            token: Token::from_index(7),
        };
        assert_eq!(ClientMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn get_job_roundtrip() {
        let m = ClientMsg::GetJob;
        assert_eq!(ClientMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn peek_roundtrip() {
        let m = ClientMsg::Peek {
            endpoint: 31,
            now: 500,
        };
        assert_eq!(ClientMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn peek_requires_both_fields() {
        assert!(ClientMsg::decode(br#"{"type":"peek"}"#).is_err());
        assert!(ClientMsg::decode(br#"{"type":"peek","endpoint":1}"#).is_err());
        assert!(ClientMsg::decode(br#"{"type":"peek","now":1}"#).is_err());
    }

    #[test]
    fn submit_roundtrip() {
        let m = ClientMsg::Submit {
            job_id: "j-42".to_string(),
            nonce: 0xdeadbeef,
            result: Hash32::keccak(b"share"),
        };
        assert_eq!(ClientMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn server_messages_roundtrip() {
        let msgs = vec![
            ServerMsg::Authed { hashes: 512 },
            ServerMsg::Job(Job::from_blob("j-1".into(), &[1, 2, 3], 16, 1_600_000)),
            ServerMsg::HashAccepted { hashes: 1024 },
            ServerMsg::Error {
                reason: "invalid share".into(),
            },
            ServerMsg::Shed { retry_after_ms: 3 },
        ];
        for m in msgs {
            assert_eq!(ServerMsg::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn job_blob_bytes_roundtrip() {
        let job = Job::from_blob("x".into(), &[0xab, 0xcd], 1, 2);
        assert_eq!(job.blob_bytes().unwrap(), vec![0xab, 0xcd]);
        let bad = Job {
            blob_hex: "zz".into(),
            ..job
        };
        assert!(bad.blob_bytes().is_err());
    }

    #[test]
    fn rejects_malformed_messages() {
        for bad in [
            &b"not json"[..],
            b"{}",
            br#"{"type":"warp"}"#,
            br#"{"type":"submit","job_id":"x","nonce":4294967296,"result":"00"}"#,
            br#"{"type":"submit","job_id":"x","nonce":1,"result":"nothex"}"#,
            br#"{"type":"auth"}"#,
            b"\xff\xfe",
        ] {
            assert!(ClientMsg::decode(bad).is_err(), "accepted {bad:?}");
        }
        assert!(ServerMsg::decode(br#"{"type":"job","job_id":"x"}"#).is_err());
    }

    #[test]
    fn tokens_are_stable_and_distinct() {
        assert_eq!(Token::from_index(1), Token::from_index(1));
        assert_ne!(Token::from_index(1), Token::from_index(2));
        assert_eq!(Token::from_index(1).0.len(), 32);
    }

    proptest! {
        #[test]
        fn submit_roundtrips_any_nonce(nonce in any::<u32>(), seed in any::<u64>()) {
            let m = ClientMsg::Submit {
                job_id: format!("job-{seed}"),
                nonce,
                result: Hash32::keccak(&seed.to_le_bytes()),
            };
            prop_assert_eq!(ClientMsg::decode(&m.encode()).unwrap(), m);
        }

        #[test]
        fn job_roundtrips_any_difficulty(d in any::<u64>(), h in any::<u64>()) {
            let m = ServerMsg::Job(Job::from_blob("j".into(), &[9; 76], d, h));
            prop_assert_eq!(ServerMsg::decode(&m.encode()).unwrap(), m);
        }

        #[test]
        fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = ClientMsg::decode(&bytes);
            let _ = ServerMsg::decode(&bytes);
        }
    }
}
