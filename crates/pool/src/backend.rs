//! Pool backends: independent template builders.
//!
//! §4.2: *"We found that we never obtain more than 8 different PoW inputs
//! [per endpoint]. Coinhive currently operates 32 mining endpoints […]
//! when we connect to all of them […] we observe at most 128 different PoW
//! inputs per block. While this suggests that there are two endpoints per
//! backend system…"*
//!
//! Model: each backend builds its own block template for the current tip,
//! with a backend-specific Coinbase extra nonce (hence a distinct Merkle
//! root), and refreshes the template on a timer up to
//! `max_templates_per_height` times while the height lasts. Two endpoints
//! map onto each backend. 16 backends × 8 template versions = the paper's
//! ≤128 distinct blobs per height.

use minedig_chain::block::{Block, BlockHeader};
use minedig_chain::netsim::TipInfo;
use minedig_chain::tx::{MinerTag, Transaction};
use minedig_primitives::Hash32;

/// A single backend's template builder.
#[derive(Clone, Debug)]
pub struct Backend {
    /// Backend index within the pool.
    pub index: u16,
    /// Pool-wide Coinbase recipient tag.
    pub pool_tag: MinerTag,
    /// Seed mixed into per-version extra nonces.
    pub seed: u64,
}

impl Backend {
    /// Coinbase extra bytes for a template version at a height: the
    /// backend id, the version, and deterministic entropy. Distinct per
    /// (backend, height, version), which is what fans the Merkle roots
    /// out.
    pub fn extra_nonce(&self, height: u64, version: u32) -> Vec<u8> {
        let mut input = Vec::with_capacity(24);
        input.extend_from_slice(&self.seed.to_le_bytes());
        input.extend_from_slice(&height.to_le_bytes());
        input.extend_from_slice(&self.index.to_le_bytes());
        input.extend_from_slice(&version.to_le_bytes());
        let h = Hash32::keccak(&input);
        let mut extra = Vec::with_capacity(11);
        extra.push(self.index as u8);
        extra.push((self.index >> 8) as u8);
        extra.push(version as u8);
        extra.extend_from_slice(&h.0[..8]);
        extra
    }

    /// Builds the template for `version` of the current tip. `timestamp`
    /// should be the virtual time of the refresh that produced this
    /// version; the block keeps it even if mined later (matching how real
    /// pool jobs carry the template's timestamp, not the solve time).
    pub fn template(&self, tip: &TipInfo, version: u32, timestamp: u64) -> Block {
        Block {
            header: BlockHeader {
                major_version: 7,
                minor_version: 7,
                timestamp,
                prev_id: tip.prev_id,
                nonce: 0,
            },
            miner_tx: Transaction::coinbase(
                tip.height,
                tip.reward,
                self.pool_tag,
                self.extra_nonce(tip.height, version),
            ),
            txs: tip.mempool.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tip() -> TipInfo {
        TipInfo {
            height: 100,
            prev_id: Hash32::keccak(b"tip"),
            prev_timestamp: 1_000_000,
            reward: 4_400_000_000_000,
            difficulty: 55_400_000_000,
            mempool: vec![
                Transaction::transfer(Hash32::keccak(b"a")),
                Transaction::transfer(Hash32::keccak(b"b")),
            ],
        }
    }

    fn backend(i: u16) -> Backend {
        Backend {
            index: i,
            pool_tag: MinerTag::from_label("coinhive"),
            seed: 42,
        }
    }

    #[test]
    fn different_backends_different_roots() {
        let t = tip();
        let a = backend(0).template(&t, 0, 1_000_010);
        let b = backend(1).template(&t, 0, 1_000_010);
        assert_ne!(a.merkle_root(), b.merkle_root());
        // But both claim the same reward for the same recipient.
        assert_eq!(a.miner_tx.coinbase_reward(), b.miner_tx.coinbase_reward());
        assert_eq!(a.miner_tx.coinbase_miner(), b.miner_tx.coinbase_miner());
    }

    #[test]
    fn different_versions_different_roots() {
        let t = tip();
        let b = backend(3);
        let roots: Vec<Hash32> = (0..8)
            .map(|v| b.template(&t, v, 1_000_000 + v as u64 * 15).merkle_root())
            .collect();
        for i in 0..roots.len() {
            for j in 0..i {
                assert_ne!(roots[i], roots[j], "versions {i} and {j} collide");
            }
        }
    }

    #[test]
    fn template_is_deterministic() {
        let t = tip();
        let b = backend(5);
        assert_eq!(b.template(&t, 2, 999), b.template(&t, 2, 999));
    }

    #[test]
    fn sixteen_backends_times_eight_versions_are_all_distinct() {
        // The paper's 128-blob bound comes from this structure.
        let t = tip();
        let mut roots = std::collections::HashSet::new();
        for i in 0..16u16 {
            for v in 0..8u32 {
                roots.insert(backend(i).template(&t, v, 1_000_000).merkle_root());
            }
        }
        assert_eq!(roots.len(), 128);
    }

    #[test]
    fn extra_nonce_encodes_backend_and_version() {
        let e = backend(0x0102).extra_nonce(7, 3);
        assert_eq!(e[0], 0x02);
        assert_eq!(e[1], 0x01);
        assert_eq!(e[2], 3);
        assert_eq!(e.len(), 11);
    }
}
