//! The pool service.
//!
//! One `Pool` owns: the backend set, the current tip and its per-backend
//! template versions, the issued-job table used for share validation, and
//! the revenue ledger. It is cheaply cloneable (`Arc` inside) so the same
//! pool can simultaneously act as a `TemplateSource` for the network
//! simulator, serve protocol sessions on transport threads, and answer
//! the observer's job requests.

use crate::accounting::Ledger;
use crate::backend::Backend;
use crate::obfuscation;
use crate::protocol::{ClientMsg, Job, ServerMsg, Token};
use minedig_chain::blob::HashingBlob;
use minedig_chain::block::Block;
use minedig_chain::merkle::block_tree_hash;
use minedig_chain::netsim::{TemplateSource, TipInfo};
use minedig_chain::tx::MinerTag;
use minedig_net::transport::{Transport, TransportError};
use minedig_pow::{check_hash, slow_hash, Variant};
use minedig_primitives::{Admission, AdmitDecision, DetRng, Hash32};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Pool configuration. Defaults model Coinhive as measured by the paper.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Pool name; used for the Coinbase tag and endpoint host names.
    pub name: String,
    /// Number of backend systems (Coinhive: 16 inferred).
    pub backends: u16,
    /// Endpoints per backend (Coinhive: 2 inferred from 32 endpoints).
    pub endpoints_per_backend: u16,
    /// Difficulty assigned to client shares (low, so browsers find them).
    pub share_difficulty: u64,
    /// Seconds between template refreshes within one height.
    pub template_refresh_secs: u64,
    /// Maximum template versions per height (Coinhive: 8 observed).
    pub max_templates_per_height: u32,
    /// Pool fee (Coinhive: 30 %).
    pub fee_fraction: f64,
    /// Whether the XOR blob countermeasure is applied to outgoing jobs.
    pub obfuscate: bool,
    /// PoW variant used for share validation.
    pub pow_variant: Variant,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            name: "coinhive".to_string(),
            backends: 16,
            endpoints_per_backend: 2,
            share_difficulty: 16,
            template_refresh_secs: 15,
            max_templates_per_height: 8,
            fee_fraction: 0.30,
            obfuscate: true,
            pow_variant: Variant::Test,
            seed: 0xc01,
        }
    }
}

struct IssuedJob {
    /// True (de-obfuscated) blob with the nonce zeroed.
    blob: Vec<u8>,
    share_difficulty: u64,
    height: u64,
}

/// Immutable snapshot of the current tip, swapped wholesale on
/// `announce_tip`. Readers clone the `Arc` out of a tiny critical
/// section and then work lock-free.
struct TipState {
    /// Monotone tip generation; per-backend caches self-invalidate by
    /// comparing against it, so a new tip needs no global cache sweep.
    epoch: u64,
    tip: Option<TipInfo>,
    seen_at: u64,
    tx_hashes: Vec<Hash32>,
}

/// One backend plus its own blob cache — the per-backend lock that lets
/// `poll_all_sharded` shards overlap peek work instead of serializing
/// on a single pool-wide mutex.
struct BackendSlot {
    backend: Backend,
    cache: Mutex<BackendCache>,
}

#[derive(Default)]
struct BackendCache {
    /// Tip epoch these blobs were built for; a mismatch clears lazily.
    epoch: u64,
    /// Cached blob per template version at the current epoch.
    blobs: HashMap<u32, Vec<u8>>,
}

/// Mutable state of the mining protocol proper: issued jobs, revenue
/// ledger, pool RNG. Touched only by miners/accounting, never by the
/// observer's peek path.
struct MiningState {
    jobs: HashMap<String, IssuedJob>,
    job_counter: u64,
    ledger: Ledger,
    rng: DetRng,
    blocks_won: u64,
}

struct Shared {
    config: PoolConfig,
    tag: MinerTag,
    online: AtomicBool,
    tip: Mutex<Arc<TipState>>,
    backends: Vec<BackendSlot>,
    mining: Mutex<MiningState>,
}

/// The pool handle. Clone freely; all clones share state.
///
/// Lock granularity (lock order is tip → backend cache → mining, and no
/// path holds two of the same tier): the online flag is an atomic, the
/// tip is an `Arc` snapshot behind its own mutex, each backend guards
/// its own blob cache, and the job/ledger state has a separate lock —
/// so concurrent peeks of different backends share nothing but the tip
/// snapshot.
#[derive(Clone)]
pub struct Pool {
    shared: Arc<Shared>,
}

/// Why a job request yielded nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The pool is in an outage window (§4.2 observed 6–7 May 2018).
    Offline,
    /// No tip has been announced yet.
    NoTip,
    /// Endpoint index out of range.
    BadEndpoint(usize),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Offline => f.write_str("pool offline"),
            JobError::NoTip => f.write_str("no chain tip known"),
            JobError::BadEndpoint(e) => write!(f, "endpoint {e} does not exist"),
        }
    }
}

impl Pool {
    /// Creates a pool.
    pub fn new(config: PoolConfig) -> Pool {
        let tag = MinerTag::from_label(&config.name);
        let backends = (0..config.backends)
            .map(|index| BackendSlot {
                backend: Backend {
                    index,
                    pool_tag: tag,
                    seed: config.seed,
                },
                cache: Mutex::new(BackendCache::default()),
            })
            .collect();
        let rng = DetRng::seed(config.seed).derive("pool");
        Pool {
            shared: Arc::new(Shared {
                config,
                tag,
                online: AtomicBool::new(true),
                tip: Mutex::new(Arc::new(TipState {
                    epoch: 0,
                    tip: None,
                    seen_at: 0,
                    tx_hashes: Vec::new(),
                })),
                backends,
                mining: Mutex::new(MiningState {
                    jobs: HashMap::new(),
                    job_counter: 0,
                    ledger: Ledger::new(),
                    rng,
                    blocks_won: 0,
                }),
            }),
        }
    }

    /// Snapshot of the current tip state (cheap: one short lock, one
    /// `Arc` clone).
    fn tip_state(&self) -> Arc<TipState> {
        self.shared.tip.lock().clone()
    }

    /// Total number of WebSocket-style endpoints.
    pub fn endpoint_count(&self) -> usize {
        let config = &self.shared.config;
        (config.backends * config.endpoints_per_backend) as usize
    }

    /// Endpoint host names, enumerable the way the paper enumerated
    /// Coinhive's (from the JavaScript or DNS).
    pub fn endpoint_names(&self) -> Vec<String> {
        (0..self.endpoint_count())
            .map(|i| format!("ws{:03}.{}.com", i + 1, self.shared.config.name))
            .collect()
    }

    /// The pool's Coinbase tag.
    pub fn tag(&self) -> MinerTag {
        self.shared.tag
    }

    /// Toggles outage state.
    pub fn set_online(&self, online: bool) {
        self.shared.online.store(online, Ordering::SeqCst);
    }

    /// True when serving jobs.
    pub fn is_online(&self) -> bool {
        self.shared.online.load(Ordering::SeqCst)
    }

    /// Announces a new chain tip (also done via the `TemplateSource`
    /// adapter when plugged into the netsim).
    pub fn announce_tip(&self, tip: &TipInfo) {
        let mut guard = self.shared.tip.lock();
        let epoch = guard.epoch + 1;
        *guard = Arc::new(TipState {
            epoch,
            tip: Some(tip.clone()),
            seen_at: tip.prev_timestamp,
            tx_hashes: tip.mempool.iter().map(|t| t.hash()).collect(),
        });
        drop(guard);
        // Backend blob caches invalidate lazily via the epoch; issued
        // jobs are dropped now so stale shares are rejected.
        self.shared.mining.lock().jobs.clear();
    }

    fn version_at(config: &PoolConfig, tip: &TipState, now: u64) -> u32 {
        let elapsed = now.saturating_sub(tip.seen_at);
        let v = elapsed / config.template_refresh_secs.max(1);
        (v as u32).min(config.max_templates_per_height - 1)
    }

    fn blob_for(shared: &Shared, tip: &TipState, backend_idx: u16, version: u32) -> Vec<u8> {
        let slot = &shared.backends[backend_idx as usize];
        let mut cache = slot.cache.lock();
        if cache.epoch != tip.epoch {
            cache.blobs.clear();
            cache.epoch = tip.epoch;
        }
        if let Some(blob) = cache.blobs.get(&version) {
            return blob.clone();
        }
        let info = tip.tip.as_ref().expect("blob_for without tip");
        let timestamp = tip.seen_at + version as u64 * shared.config.template_refresh_secs;
        let coinbase_hash = slot
            .backend
            .template(info, version, timestamp)
            .miner_tx
            .hash();
        let root = block_tree_hash(coinbase_hash, &tip.tx_hashes);
        let blob = HashingBlob {
            major_version: 7,
            minor_version: 7,
            timestamp,
            prev_id: info.prev_id,
            nonce: 0,
            merkle_root: root,
            tx_count: 1 + tip.tx_hashes.len() as u64,
        }
        .to_bytes();
        cache.blobs.insert(version, blob.clone());
        blob
    }

    fn backend_of_endpoint(config: &PoolConfig, endpoint: usize) -> Result<u16, JobError> {
        let total = (config.backends * config.endpoints_per_backend) as usize;
        if endpoint >= total {
            return Err(JobError::BadEndpoint(endpoint));
        }
        Ok((endpoint / config.endpoints_per_backend as usize) as u16)
    }

    /// Observer-style job fetch: returns the blob currently served by the
    /// given endpoint *without* registering a job for share submission —
    /// this is what the paper's 500 ms poller does.
    pub fn peek_job(&self, endpoint: usize, now: u64) -> Result<Job, JobError> {
        let shared = &*self.shared;
        if !self.is_online() {
            return Err(JobError::Offline);
        }
        let tip = self.tip_state();
        let Some(info) = tip.tip.as_ref() else {
            return Err(JobError::NoTip);
        };
        let backend = Self::backend_of_endpoint(&shared.config, endpoint)?;
        let version = Self::version_at(&shared.config, &tip, now);
        let mut blob = Self::blob_for(shared, &tip, backend, version);
        if shared.config.obfuscate {
            obfuscation::xor_blob(&mut blob);
        }
        let height = info.height;
        Ok(Job::from_blob(
            format!("peek-{height}-{backend}-{version}"),
            &blob,
            shared.config.share_difficulty,
            height,
        ))
    }

    /// Miner-style job fetch: registers the job so shares can be
    /// validated and credited.
    pub fn issue_job(&self, endpoint: usize, now: u64) -> Result<Job, JobError> {
        let shared = &*self.shared;
        if !self.is_online() {
            return Err(JobError::Offline);
        }
        let tip = self.tip_state();
        let Some(info) = tip.tip.as_ref() else {
            return Err(JobError::NoTip);
        };
        let backend = Self::backend_of_endpoint(&shared.config, endpoint)?;
        let version = Self::version_at(&shared.config, &tip, now);
        let true_blob = Self::blob_for(shared, &tip, backend, version);
        let height = info.height;
        let share_difficulty = shared.config.share_difficulty;
        let mut mining = shared.mining.lock();
        mining.job_counter += 1;
        let job_id = format!("j{}-{height}-{backend}", mining.job_counter);
        mining.jobs.insert(
            job_id.clone(),
            IssuedJob {
                blob: true_blob.clone(),
                share_difficulty,
                height,
            },
        );
        drop(mining);
        let mut wire_blob = true_blob;
        if shared.config.obfuscate {
            obfuscation::xor_blob(&mut wire_blob);
        }
        Ok(Job::from_blob(job_id, &wire_blob, share_difficulty, height))
    }

    /// Validates a submitted share and credits `token` on success.
    /// Returns the token's cumulative credited hashes.
    pub fn submit_share(
        &self,
        token: &Token,
        job_id: &str,
        nonce: u32,
        result: &Hash32,
    ) -> Result<u64, String> {
        let tip = self.tip_state();
        let current_height = tip.tip.as_ref().map(|t| t.height);
        let mut mining = self.shared.mining.lock();
        let (blob, share_difficulty) = match mining.jobs.get(job_id) {
            None => {
                mining.ledger.record_rejected();
                return Err("unknown or stale job".to_string());
            }
            Some(job) => {
                if Some(job.height) != current_height {
                    mining.ledger.record_rejected();
                    return Err("stale height".to_string());
                }
                (job.blob.clone(), job.share_difficulty)
            }
        };
        // Reconstruct the blob with the claimed nonce and verify.
        let parsed = HashingBlob::parse(&blob).expect("issued blob parses");
        let mined = parsed.with_nonce(nonce).to_bytes();
        let variant = self.shared.config.pow_variant;
        let hash = slow_hash(&mined, variant);
        if hash != *result {
            mining.ledger.record_rejected();
            return Err("result hash mismatch".to_string());
        }
        if !check_hash(&hash, share_difficulty) {
            mining.ledger.record_rejected();
            return Err("low difficulty share".to_string());
        }
        Ok(mining.ledger.credit_share(token, share_difficulty))
    }

    /// Read access to the ledger (clone) for analyses and tests.
    pub fn ledger(&self) -> Ledger {
        self.shared.mining.lock().ledger.clone()
    }

    /// Number of blocks this pool has won.
    pub fn blocks_won(&self) -> u64 {
        self.shared.mining.lock().blocks_won
    }

    /// Builds the winning block at `found_at` and settles the ledger.
    /// Used by the `TemplateSource` adapter.
    pub fn win_block(&self, found_at: u64) -> Block {
        let shared = &*self.shared;
        let tip = self.tip_state();
        let info = tip.tip.clone().expect("win_block without tip");
        let version = Self::version_at(&shared.config, &tip, found_at);
        let timestamp = tip.seen_at + version as u64 * shared.config.template_refresh_secs;
        let mut mining = shared.mining.lock();
        let n_backends = shared.config.backends as u64;
        let backend_idx = mining.rng.gen_range(n_backends) as usize;
        let backend = shared.backends[backend_idx].backend.clone();
        let mut block = backend.template(&info, version, timestamp);
        block.header.nonce = mining.rng.next_u32();
        let fee = shared.config.fee_fraction;
        mining.ledger.distribute(info.reward, fee);
        mining.blocks_won += 1;
        block
    }

    /// Serves one protocol session over a transport. Returns when the
    /// peer disconnects. `endpoint` selects which backend's jobs this
    /// session sees; `clock` supplies virtual (or wall) time.
    pub fn serve<T: Transport, C: Fn() -> u64>(
        &self,
        transport: &mut T,
        endpoint: usize,
        clock: C,
    ) {
        self.serve_with_admission(transport, endpoint, clock, None);
    }

    /// [`Pool::serve`] behind a shared admission controller: every
    /// received request is offered to the token bucket *before* any
    /// decoding or pool work, and over-limit requests are answered with
    /// [`ServerMsg::Shed`] instead of being processed. The controller is
    /// shared by reference so all of a pool's connection threads drain
    /// one bucket — overload is a server-wide condition, not a
    /// per-session one. With `admission == None` this is byte-for-byte
    /// the plain serve loop.
    pub fn serve_with_admission<T: Transport, C: Fn() -> u64>(
        &self,
        transport: &mut T,
        endpoint: usize,
        clock: C,
        admission: Option<&Mutex<Admission>>,
    ) {
        let mut token: Option<Token> = None;
        loop {
            let msg = match transport.recv() {
                Ok(m) => m,
                Err(_) => return,
            };
            if let Some(gate) = admission {
                let mut gate = gate.lock();
                if gate.admit(clock()) == AdmitDecision::Shed {
                    let reply = ServerMsg::Shed {
                        retry_after_ms: gate.retry_after(),
                    };
                    drop(gate);
                    if transport.send(&reply.encode()).is_err() {
                        return;
                    }
                    continue;
                }
            }
            let reply = match ClientMsg::decode(&msg) {
                Err(e) => ServerMsg::Error {
                    reason: e.to_string(),
                },
                Ok(ClientMsg::Auth { token: t }) => {
                    let hashes = self.shared.mining.lock().ledger.lifetime_hashes(&t);
                    token = Some(t);
                    ServerMsg::Authed { hashes }
                }
                Ok(ClientMsg::GetJob) => match token {
                    None => ServerMsg::Error {
                        reason: "not authenticated".to_string(),
                    },
                    Some(_) => match self.issue_job(endpoint, clock()) {
                        Ok(job) => ServerMsg::Job(job),
                        Err(e) => ServerMsg::Error {
                            reason: e.to_string(),
                        },
                    },
                },
                // The observer's poll probe: unauthenticated (it never
                // submits) and keyed by the observer's own virtual
                // timestamp so a probe's answer is independent of the
                // serving session's clock.
                Ok(ClientMsg::Peek { endpoint, now }) => {
                    match self.peek_job(endpoint as usize, now) {
                        Ok(job) => ServerMsg::Job(job),
                        Err(e) => ServerMsg::Error {
                            reason: e.to_string(),
                        },
                    }
                }
                Ok(ClientMsg::Submit {
                    job_id,
                    nonce,
                    result,
                }) => match &token {
                    None => ServerMsg::Error {
                        reason: "not authenticated".to_string(),
                    },
                    Some(t) => match self.submit_share(t, &job_id, nonce, &result) {
                        Ok(hashes) => ServerMsg::HashAccepted { hashes },
                        Err(reason) => ServerMsg::Error { reason },
                    },
                },
            };
            if transport.send(&reply.encode()).is_err() {
                return;
            }
        }
    }

    /// Wraps this pool as a [`TemplateSource`] for the network simulator.
    pub fn template_source(&self) -> PoolTemplateSource {
        PoolTemplateSource { pool: self.clone() }
    }
}

/// `TemplateSource` adapter handing the pool's templates to the netsim.
pub struct PoolTemplateSource {
    pool: Pool,
}

impl TemplateSource for PoolTemplateSource {
    fn on_new_tip(&mut self, tip: &TipInfo) {
        self.pool.announce_tip(tip);
    }

    fn make_block(&mut self, found_at: u64) -> Block {
        self.pool.win_block(found_at)
    }
}

/// Convenience: result of a serve loop used by tests.
pub fn drive_session<T: Transport>(
    transport: &mut T,
    msg: &ClientMsg,
) -> Result<ServerMsg, TransportError> {
    transport.send(&msg.encode())?;
    let raw = transport.recv()?;
    ServerMsg::decode(&raw).map_err(|e| TransportError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minedig_chain::tx::Transaction;
    use minedig_net::transport::channel_pair;

    fn tip(height: u64, seen_at: u64) -> TipInfo {
        TipInfo {
            height,
            prev_id: Hash32::keccak(&height.to_le_bytes()),
            prev_timestamp: seen_at,
            reward: 4_400_000_000_000,
            difficulty: 1_000,
            mempool: vec![Transaction::transfer(Hash32::keccak(b"m1"))],
        }
    }

    fn pool() -> Pool {
        Pool::new(PoolConfig::default())
    }

    #[test]
    fn endpoint_inventory_matches_coinhive() {
        let p = pool();
        assert_eq!(p.endpoint_count(), 32);
        let names = p.endpoint_names();
        assert_eq!(names.len(), 32);
        assert_eq!(names[0], "ws001.coinhive.com");
        assert_eq!(names[31], "ws032.coinhive.com");
    }

    #[test]
    fn no_tip_means_no_job() {
        let p = pool();
        assert_eq!(p.peek_job(0, 100), Err(JobError::NoTip));
    }

    #[test]
    fn offline_means_no_job() {
        let p = pool();
        p.announce_tip(&tip(1, 100));
        p.set_online(false);
        assert_eq!(p.peek_job(0, 100), Err(JobError::Offline));
        p.set_online(true);
        assert!(p.peek_job(0, 100).is_ok());
    }

    #[test]
    fn bad_endpoint_rejected() {
        let p = pool();
        p.announce_tip(&tip(1, 100));
        assert_eq!(p.peek_job(32, 100), Err(JobError::BadEndpoint(32)));
    }

    #[test]
    fn paired_endpoints_share_blobs() {
        let p = pool();
        p.announce_tip(&tip(1, 100));
        let a = p.peek_job(0, 100).unwrap();
        let b = p.peek_job(1, 100).unwrap();
        let c = p.peek_job(2, 100).unwrap();
        assert_eq!(a.blob_hex, b.blob_hex, "endpoints 0,1 share backend 0");
        assert_ne!(a.blob_hex, c.blob_hex, "endpoint 2 is backend 1");
    }

    #[test]
    fn at_most_eight_versions_per_height() {
        let p = pool();
        p.announce_tip(&tip(1, 1_000));
        let mut blobs = std::collections::HashSet::new();
        // Poll one endpoint across far more refresh windows than versions.
        for s in 0..100 {
            let job = p.peek_job(0, 1_000 + s * 10).unwrap();
            blobs.insert(job.blob_hex);
        }
        assert_eq!(blobs.len(), 8);
    }

    #[test]
    fn all_backends_yield_128_distinct_blobs() {
        let p = pool();
        p.announce_tip(&tip(1, 1_000));
        let mut blobs = std::collections::HashSet::new();
        for endpoint in 0..32 {
            for s in 0..120 {
                if let Ok(job) = p.peek_job(endpoint, 1_000 + s) {
                    blobs.insert(job.blob_hex);
                }
            }
        }
        assert_eq!(blobs.len(), 128, "16 backends x 8 versions");
    }

    #[test]
    fn obfuscation_hides_true_blob() {
        let p = pool();
        p.announce_tip(&tip(1, 100));
        let job = p.peek_job(0, 100).unwrap();
        let wire = job.blob_bytes().unwrap();
        let mut reverted = wire.clone();
        obfuscation::xor_blob(&mut reverted);
        // The wire form parses but points at a wrong prev id; the reverted
        // form carries the real tip prev id.
        let tip_prev = Hash32::keccak(&1u64.to_le_bytes());
        assert_ne!(HashingBlob::parse(&wire).unwrap().prev_id, tip_prev);
        assert_eq!(HashingBlob::parse(&reverted).unwrap().prev_id, tip_prev);
    }

    #[test]
    fn share_flow_accept_and_reject() {
        let p = Pool::new(PoolConfig {
            share_difficulty: 2, // ~every other hash passes
            ..PoolConfig::default()
        });
        p.announce_tip(&tip(5, 100));
        let token = Token::from_index(1);
        let job = p.issue_job(0, 100).unwrap();
        let mut blob = job.blob_bytes().unwrap();
        obfuscation::xor_blob(&mut blob); // miner reverts the countermeasure
        let parsed = HashingBlob::parse(&blob).unwrap();

        let mut accepted = 0;
        for nonce in 0..64u32 {
            let mined = parsed.with_nonce(nonce).to_bytes();
            let h = slow_hash(&mined, Variant::Test);
            match p.submit_share(&token, &job.job_id, nonce, &h) {
                Ok(_) => accepted += 1,
                Err(reason) => assert_eq!(reason, "low difficulty share"),
            }
        }
        assert!(accepted > 0, "some shares must pass difficulty 2");
        let (ok, rej) = p.ledger().share_counts();
        assert_eq!(ok, accepted);
        assert_eq!(ok + rej, 64);
        assert_eq!(p.ledger().lifetime_hashes(&token), accepted * 2);
    }

    #[test]
    fn share_without_deobfuscation_is_rejected() {
        // The countermeasure in action: hashing the wire blob directly
        // (like a generic miner would) yields only rejected shares.
        let p = Pool::new(PoolConfig {
            share_difficulty: 1, // every correctly-computed hash passes
            ..PoolConfig::default()
        });
        p.announce_tip(&tip(5, 100));
        let token = Token::from_index(2);
        let job = p.issue_job(0, 100).unwrap();
        let wire = job.blob_bytes().unwrap(); // NOT reverted
        let parsed = HashingBlob::parse(&wire).unwrap();
        for nonce in 0..8u32 {
            let mined = parsed.with_nonce(nonce).to_bytes();
            let h = slow_hash(&mined, Variant::Test);
            let res = p.submit_share(&token, &job.job_id, nonce, &h);
            assert_eq!(res.unwrap_err(), "result hash mismatch");
        }
    }

    #[test]
    fn stale_jobs_rejected_after_new_tip() {
        let p = Pool::new(PoolConfig {
            share_difficulty: 1,
            ..PoolConfig::default()
        });
        p.announce_tip(&tip(5, 100));
        let job = p.issue_job(0, 100).unwrap();
        p.announce_tip(&tip(6, 220));
        let token = Token::from_index(3);
        let res = p.submit_share(&token, &job.job_id, 0, &Hash32::ZERO);
        assert!(res.is_err());
    }

    #[test]
    fn win_block_matches_a_served_blob() {
        // The heart of §4.2: the merkle root of the won block must be one
        // the observer could have collected from an endpoint.
        let p = pool();
        p.announce_tip(&tip(9, 1_000));
        let mut seen_roots = std::collections::HashSet::new();
        for endpoint in 0..32 {
            for s in (0..120).step_by(5) {
                if let Ok(job) = p.peek_job(endpoint, 1_000 + s) {
                    let mut blob = job.blob_bytes().unwrap();
                    obfuscation::xor_blob(&mut blob);
                    seen_roots.insert(HashingBlob::parse(&blob).unwrap().merkle_root);
                }
            }
        }
        let block = p.win_block(1_050);
        assert!(seen_roots.contains(&block.merkle_root()));
        assert_eq!(p.blocks_won(), 1);
    }

    #[test]
    fn win_block_distributes_reward() {
        let p = pool();
        p.announce_tip(&tip(9, 1_000));
        let token = Token::from_index(9);
        self::credit_via_internal(&p, &token, 100);
        let _ = p.win_block(1_010);
        let l = p.ledger();
        let total = l.balance(&token) + l.pool_balance();
        assert_eq!(total, 4_400_000_000_000);
        // 70/30 split.
        assert_eq!(l.balance(&token), (4_400_000_000_000f64 * 0.7) as u64);
    }

    /// Test helper: credit shares without grinding PoW.
    fn credit_via_internal(p: &Pool, token: &Token, hashes: u64) {
        p.shared.mining.lock().ledger.credit_share(token, hashes);
    }

    #[test]
    fn concurrent_peeks_race_tip_announcements_safely() {
        // The split-lock structure must stay coherent when peeks of
        // different backends overlap a tip swap: every job returned is
        // for one of the announced heights, never a torn mix.
        let p = pool();
        p.announce_tip(&tip(1, 100));
        let peekers: Vec<_> = (0..4)
            .map(|t| {
                let p = p.clone();
                std::thread::spawn(move || {
                    for s in 0..200u64 {
                        let endpoint = (t * 7 + s as usize) % 32;
                        if let Ok(job) = p.peek_job(endpoint, 100 + s) {
                            assert!((1..=8).contains(&job.height), "height {}", job.height);
                        }
                    }
                })
            })
            .collect();
        for h in 2..=8u64 {
            p.announce_tip(&tip(h, 100 + h * 20));
        }
        for t in peekers {
            t.join().unwrap();
        }
    }

    #[test]
    fn serve_answers_peek_without_auth() {
        let p = pool();
        p.announce_tip(&tip(3, 40));
        let (mut client, mut server) = channel_pair();
        let pool_clone = p.clone();
        let handle = std::thread::spawn(move || {
            pool_clone.serve(&mut server, 0, || 60);
        });
        // A peek needs no auth and matches the local peek bit-for-bit —
        // the probe's own timestamp keys the job, not the session clock.
        let r = drive_session(
            &mut client,
            &ClientMsg::Peek {
                endpoint: 5,
                now: 90,
            },
        )
        .unwrap();
        assert_eq!(r, ServerMsg::Job(p.peek_job(5, 90).unwrap()));
        // Errors carry the JobError rendering the observer classifies on.
        let r = drive_session(
            &mut client,
            &ClientMsg::Peek {
                endpoint: 999,
                now: 90,
            },
        )
        .unwrap();
        assert_eq!(
            r,
            ServerMsg::Error {
                reason: "endpoint 999 does not exist".to_string()
            }
        );
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn admission_sheds_over_limit_requests() {
        let p = pool();
        p.announce_tip(&tip(3, 40));
        // Tiny bucket on a frozen clock: it never refills, so after the
        // burst and the one queue slot everything is shed.
        let admission = Arc::new(Mutex::new(Admission::new(
            minedig_primitives::AdmissionConfig {
                burst: 2,
                refill_per_tick: 1,
                queue_cap: 1,
            },
        )));
        let (mut client, mut server) = channel_pair();
        let pool_clone = p.clone();
        let adm = admission.clone();
        let handle = std::thread::spawn(move || {
            pool_clone.serve_with_admission(&mut server, 0, || 60, Some(&adm));
        });
        let mut jobs = 0u64;
        let mut sheds = 0u64;
        for _ in 0..8 {
            match drive_session(
                &mut client,
                &ClientMsg::Peek {
                    endpoint: 0,
                    now: 90,
                },
            )
            .unwrap()
            {
                ServerMsg::Job(_) => jobs += 1,
                ServerMsg::Shed { retry_after_ms } => {
                    assert!(retry_after_ms >= 1, "shed must carry a usable hint");
                    sheds += 1;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        drop(client);
        handle.join().unwrap();
        assert_eq!(jobs, 3, "burst of 2 plus one queued request process");
        assert_eq!(sheds, 5);
        let stats = *admission.lock().stats();
        assert_eq!(stats.offered, 8);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.shed, 5);
        assert!(stats.balanced(), "{stats:?}");
    }

    #[test]
    fn generous_admission_is_invisible() {
        // Under the rate limit the gated serve loop must answer
        // byte-identically to the plain one.
        let run = |admission: Option<Arc<Mutex<Admission>>>| -> Vec<ServerMsg> {
            let p = pool();
            p.announce_tip(&tip(3, 40));
            let (mut client, mut server) = channel_pair();
            let pool_clone = p.clone();
            let handle = std::thread::spawn(move || match admission {
                Some(adm) => pool_clone.serve_with_admission(&mut server, 0, || 60, Some(&adm)),
                None => pool_clone.serve(&mut server, 0, || 60),
            });
            let replies = (0..20)
                .map(|i| {
                    drive_session(
                        &mut client,
                        &ClientMsg::Peek {
                            endpoint: i % 32,
                            now: 90 + i,
                        },
                    )
                    .unwrap()
                })
                .collect();
            drop(client);
            handle.join().unwrap();
            replies
        };
        let gate = Arc::new(Mutex::new(Admission::new(
            minedig_primitives::AdmissionConfig::default(),
        )));
        assert_eq!(run(Some(gate.clone())), run(None));
        let stats = *gate.lock().stats();
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.accepted, 20);
    }

    #[test]
    fn serve_session_over_channel_transport() {
        let p = Pool::new(PoolConfig {
            share_difficulty: 1,
            ..PoolConfig::default()
        });
        p.announce_tip(&tip(2, 50));
        let (mut client, mut server) = channel_pair();
        let pool_clone = p.clone();
        let handle = std::thread::spawn(move || {
            pool_clone.serve(&mut server, 0, || 60);
        });

        // Unauthenticated get_job is refused.
        let r = drive_session(&mut client, &ClientMsg::GetJob).unwrap();
        assert!(matches!(r, ServerMsg::Error { .. }));

        let r = drive_session(
            &mut client,
            &ClientMsg::Auth {
                token: Token::from_index(4),
            },
        )
        .unwrap();
        assert_eq!(r, ServerMsg::Authed { hashes: 0 });

        let r = drive_session(&mut client, &ClientMsg::GetJob).unwrap();
        let job = match r {
            ServerMsg::Job(j) => j,
            other => panic!("expected job, got {other:?}"),
        };

        // Solve one share correctly (revert the XOR first).
        let mut blob = job.blob_bytes().unwrap();
        obfuscation::xor_blob(&mut blob);
        let parsed = HashingBlob::parse(&blob).unwrap();
        let mined = parsed.with_nonce(7).to_bytes();
        let h = slow_hash(&mined, Variant::Test);
        let r = drive_session(
            &mut client,
            &ClientMsg::Submit {
                job_id: job.job_id.clone(),
                nonce: 7,
                result: h,
            },
        )
        .unwrap();
        assert_eq!(r, ServerMsg::HashAccepted { hashes: 1 });

        drop(client);
        handle.join().unwrap();
    }
}
