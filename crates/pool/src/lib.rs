#![warn(missing_docs)]
//! A Coinhive-style Monero mining pool and its miner client.
//!
//! §4 of the paper dissects Coinhive: a pool that hands PoW jobs to
//! browser miners authenticated by a per-customer token, keeps 30 % of the
//! block reward, operates 32 WebSocket endpoints backed by (apparently) 16
//! backend systems each serving up to 8 distinct PoW inputs per block
//! height, and — as the authors discovered while building a non-browser
//! resolver — XORs a fixed value at a fixed offset into the job blob as a
//! countermeasure against using the web miner outside the Coinhive
//! environment (§4.1, footnote 3). This crate implements all of that:
//!
//! * [`protocol`] — the JSON job protocol (auth / job / submit / accept),
//! * [`obfuscation`] — the XOR-at-fixed-offset blob countermeasure,
//! * [`backend`] — per-backend block templates with distinct Coinbase
//!   extra nonces (the reason Merkle roots differ per backend),
//! * [`pool`] — the pool service: template management, job issuance, share
//!   validation, and the `TemplateSource` integration that makes netsim
//!   blocks consistent with served jobs,
//! * [`accounting`] — pro-rata share accounting with the 70/30 split,
//! * [`miner`] — the client: authenticates, de-obfuscates, grinds nonces,
//!   submits shares (the paper's §4.1 resolver replicates exactly this),
//! * [`captcha`] — the PoW-gated captcha side business the paper mentions.

pub mod accounting;
pub mod backend;
pub mod captcha;
pub mod miner;
pub mod obfuscation;
pub mod pool;
pub mod protocol;

pub use miner::MinerClient;
pub use pool::{Pool, PoolConfig};
pub use protocol::{ClientMsg, Job, ServerMsg, Token};
