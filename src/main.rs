//! The `minedig` command-line tool: run the paper's measurements from a
//! terminal.
//!
//! ```text
//! minedig scan <alexa|com|net|org> [seed]   §3 pipelines on one zone
//! minedig attribute [days] [seed]           §4.2 block attribution
//! minedig shortlink [links] [seed]          §4.1 link-space study
//! minedig hashrate                          local CryptoNight throughput
//! ```
//!
//! `MINEDIG_STREAM=1 minedig shortlink …` runs the study through the
//! streaming pipeline (probes fan across `MINEDIG_SHARDS` workers while
//! a resolver thread consumes the unbiased tail as it is discovered) —
//! same outputs, overlapped wall-clock, plus pipeline stats.
//!
//! `MINEDIG_ASYNC=1` switches `scan` and `shortlink` to the cooperative
//! async backend instead: up to `MINEDIG_CONCURRENCY` fetches (default
//! 256) await their simulated network latency at once on a single
//! thread — same outputs for any concurrency, plus executor stats.
//!
//! `MINEDIG_CKPT_DIR=<dir>` runs `scan`, `attribute` and `shortlink`
//! supervised: progress checkpoints land in `<dir>` every
//! `MINEDIG_CKPT_EVERY` items (default 64, last `MINEDIG_CKPT_KEEP`
//! snapshots retained), the Chrome scan's fingerprint memo persists
//! across runs, and `--resume` continues a killed campaign from its
//! latest snapshot — with results bit-identical to an uninterrupted
//! run.
//!
//! `MINEDIG_HEALTH=1 minedig attribute …` puts the §4.2 poller behind
//! the endpoint-health layer: per-endpoint circuit breakers quarantine
//! dead pools, EWMA latency trackers tighten deadlines, and slow
//! endpoints are hedged — with poll results bit-identical to the plain
//! run when no faults fire, and a breaker/hedge summary either way.

use minedig::analysis::economics::{pool_revenue, ExchangeRate};
use minedig::analysis::scenario::{run_scenario, run_scenario_supervised, ScenarioConfig};
use minedig::core::campaign::{ChromeCampaign, ZgrabCampaign};
use minedig::core::exec::{chrome_scan_async, zgrab_scan_async, ScanExecutor};
use minedig::core::report::{
    async_poll_summary, async_stats, checkpoint_summary, comparison_table, degradation_summary,
    fetch_stats, health_summary, pipeline_stats, scan_stats, CampaignHealth, Comparison,
};
use minedig::core::scan::{build_reference_db, FetchModel};
use minedig::core::shortlink_study::{
    run_study, run_study_async, run_study_streaming, run_study_supervised, StudyConfig, StudyResult,
};
use minedig::pow::hashrate::measure_hashrate;
use minedig::pow::Variant;
use minedig::primitives::aexec::AsyncExecutor;
use minedig::primitives::ckpt::SnapshotStore;
use minedig::primitives::fault::FaultPlan;
use minedig::primitives::health::{health_from_env, HealthConfig};
use minedig::primitives::par::ParallelExecutor;
use minedig::primitives::pipeline::PipelineExecutor;
use minedig::primitives::supervise::{Backend, CrashPolicy, Supervisor, CKPT_DIR_ENV};
use minedig::shortlink::model::ModelConfig;
use minedig::wasm::corpus::generate_corpus;
use minedig::wasm::{corpus_content_key, CacheWarmth, FingerprintCache};
use minedig::web::page::CORPUS_SEED;
use minedig::web::universe::Population;
use minedig::web::zone::Zone;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let resume = args.iter().any(|a| a == "--resume");
    args.retain(|a| a != "--resume");
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "scan" => cmd_scan(&args[1..], resume),
        "attribute" => cmd_attribute(&args[1..], resume),
        "shortlink" => cmd_shortlink(&args[1..], resume),
        "hashrate" => cmd_hashrate(),
        _ => {
            eprintln!(
                "minedig — reproduction of 'Digging into Browser-based Crypto Mining' (IMC'18)\n\n\
                 usage:\n  \
                 minedig scan <alexa|com|net|org> [seed] [--resume]\n  \
                 minedig attribute [days] [seed] [--resume]\n  \
                 minedig shortlink [links] [seed] [--resume]\n  \
                 minedig hashrate\n\n\
                 MINEDIG_CKPT_DIR=<dir> checkpoints scan/attribute/shortlink campaigns\n\
                 every MINEDIG_CKPT_EVERY items (default 64), retaining the last\n\
                 MINEDIG_CKPT_KEEP snapshots (default 2); --resume continues from the\n\
                 latest snapshot.\n\
                 MINEDIG_HEALTH=1 runs attribute behind the endpoint-health layer\n\
                 (circuit breakers, adaptive deadlines, hedged probes)."
            );
            std::process::exit(if cmd == "help" { 0 } else { 2 });
        }
    }
}

fn arg_u64(args: &[String], idx: usize, default: u64) -> u64 {
    args.get(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The snapshot store named by `MINEDIG_CKPT_DIR`, when set.
fn ckpt_store() -> Option<SnapshotStore> {
    let dir = std::env::var(CKPT_DIR_ENV).ok()?;
    match SnapshotStore::open(&dir) {
        Ok(store) => Some(store),
        Err(e) => {
            eprintln!("cannot open checkpoint dir '{dir}': {e}");
            std::process::exit(2);
        }
    }
}

/// A supervisor with the env checkpoint cadence, drawing simulated
/// kills from the fault plan's crash stream when one is configured.
fn supervisor_from_env() -> Supervisor {
    let supervisor = Supervisor::new(CrashPolicy::from_env());
    match FaultPlan::from_env() {
        Some(plan) => supervisor.with_fault_plan(plan),
        None => supervisor,
    }
}

fn cmd_scan(args: &[String], resume: bool) {
    let zone = match args.first().map(String::as_str) {
        Some("alexa") => Zone::Alexa,
        Some("com") => Zone::Com,
        Some("net") => Zone::Net,
        Some("org") | None => Zone::Org,
        Some(other) => {
            eprintln!("unknown zone '{other}' (use alexa|com|net|org)");
            std::process::exit(2);
        }
    };
    let zone_tag = match zone {
        Zone::Alexa => "alexa",
        Zone::Com => "com",
        Zone::Net => "net",
        Zone::Org => "org",
    };
    let seed = arg_u64(args, 1, 2018);
    println!(
        "generating {} ({} domains, miners materialized exactly)…",
        zone.label(),
        zone.full_size()
    );
    let population = Population::generate(zone, seed, 500);
    println!(
        "ground truth: {} active miners\n",
        population.true_active_miners()
    );

    // MINEDIG_FAULT_SEED injects a reproducible transport fault
    // schedule; the retry budget outlasts its transient faults, so only
    // permanent ones surface (as unreachable counts).
    let model = match FaultPlan::from_env() {
        Some(plan) => {
            println!("fault injection on (seed {})", plan.seed());
            FetchModel::outlasting(plan)
        }
        None => FetchModel::default(),
    };

    // MINEDIG_CKPT_DIR runs the scan supervised: checkpointed, resumable
    // with --resume, and with a persistent fingerprint memo. Results are
    // bit-identical to the unsupervised path on every backend.
    if let Some(store) = ckpt_store() {
        supervised_scan(&store, zone, zone_tag, seed, &population, &model, resume);
        return;
    }

    // MINEDIG_ASYNC=1 fans fetches out as cooperative tasks on one
    // thread; otherwise the scan shards across MINEDIG_SHARDS workers
    // (default: all cores). Either way, outcomes are bit-identical to a
    // sequential scan.
    let async_exec = std::env::var("MINEDIG_ASYNC")
        .is_ok()
        .then(AsyncExecutor::from_env);
    let executor = ScanExecutor::from_env();
    let (zg, zg_stats) = match &async_exec {
        Some(aexec) => {
            let run = zgrab_scan_async(&population, seed, &model, aexec);
            (run.outcome, async_stats("zgrab", &run.stats))
        }
        None => {
            let run = executor.zgrab_with(&population, seed, &model);
            (run.outcome, scan_stats("zgrab", &run.stats))
        }
    };
    println!(
        "zgrab + NoCoin (TLS-only, 256 kB): {} domains flagged, 0 FPs on {} clean samples",
        zg.hit_domains, zg.clean_sample_size
    );
    print!("{zg_stats}");
    print!("{}", fetch_stats("zgrab fetches", &zg.fetch));

    let mut health = vec![CampaignHealth::from_fetch("zgrab", &zg.fetch)];

    if zone.chrome_scanned() {
        let db = build_reference_db(0.7);
        let (ch, ch_stats) = match &async_exec {
            Some(aexec) => {
                let run = chrome_scan_async(&population, &db, seed, &model, None, aexec);
                (run.outcome, async_stats("chrome", &run.stats))
            }
            None => {
                let run = executor.chrome_with(&population, &db, seed, &model);
                (run.outcome, scan_stats("chrome", &run.stats))
            }
        };
        print!("{ch_stats}");
        print!("{}", fetch_stats("chrome fetches", &ch.fetch));
        health.push(CampaignHealth::from_fetch("chrome", &ch.fetch));
        print_chrome_findings(&ch);
    } else {
        println!("(zone not part of the paper's Chrome measurement — §3.2 covers Alexa and .org)");
    }
    print!("{}", degradation_summary(&health));
}

fn print_chrome_findings(ch: &minedig::core::scan::ChromeScanOutcome) {
    let rows = vec![
        Comparison::new(
            "NoCoin hits (post-exec HTML)",
            0.0,
            ch.nocoin_domains as f64,
        ),
        Comparison::new("sites with Wasm", 0.0, ch.wasm_domains as f64),
        Comparison::new("miner-Wasm sites", 0.0, ch.miner_wasm_domains as f64),
        Comparison::new("  blocked by NoCoin", 0.0, ch.blocked_by_nocoin as f64),
        Comparison::new("  missed by NoCoin", 0.0, ch.missed_by_nocoin as f64),
    ];
    // Reuse the table renderer; the 'paper' column is not meaningful
    // for an ad-hoc zone/seed, so only print the measured side.
    let table = comparison_table("Chrome scan", &rows);
    for line in table.lines() {
        // Strip the paper/delta columns for the CLI view.
        println!("{}", line);
    }
    println!(
        "top classes: {:?}",
        ch.class_counts.iter().take(5).collect::<Vec<_>>()
    );
}

/// The checkpointed scan: both pipelines run as supervised campaigns,
/// the Chrome pass reuses a fingerprint memo persisted across runs, and
/// outcomes match the unsupervised path bit for bit.
fn supervised_scan(
    store: &SnapshotStore,
    zone: Zone,
    zone_tag: &str,
    seed: u64,
    population: &Population,
    model: &FetchModel,
    resume: bool,
) {
    let backend = Backend::from_env();
    let supervisor = supervisor_from_env();
    println!(
        "checkpointing to {} every {} items ({} backend){}",
        store.dir().display(),
        supervisor.policy().ckpt_every_items,
        backend.label(),
        if resume { ", resuming" } else { "" },
    );

    let name = format!("scan-zgrab-{zone_tag}-{seed}");
    let run = supervisor
        .run(
            store,
            &name,
            || ZgrabCampaign::new(population, seed, model, backend),
            resume,
        )
        .unwrap_or_else(|e| {
            eprintln!("zgrab campaign failed: {e}");
            std::process::exit(1);
        });
    let zg = run.output;
    print!("{}", checkpoint_summary("zgrab", &run.report));
    println!(
        "zgrab + NoCoin (TLS-only, 256 kB): {} domains flagged, 0 FPs on {} clean samples",
        zg.hit_domains, zg.clean_sample_size
    );
    print!("{}", fetch_stats("zgrab fetches", &zg.fetch));
    let mut health = vec![CampaignHealth::from_fetch("zgrab", &zg.fetch)];

    if zone.chrome_scanned() {
        let db = build_reference_db(0.7);
        // The fingerprint memo is content-addressed, so it persists
        // across runs keyed by the module universe it was built over.
        let corpus_key = corpus_content_key(&generate_corpus(CORPUS_SEED));
        let (cache, warmth) = FingerprintCache::load(store, "fingerprints", corpus_key)
            .unwrap_or_else(|e| {
                eprintln!("discarding unreadable fingerprint memo: {e}");
                (FingerprintCache::new(), CacheWarmth::Cold)
            });
        match warmth {
            CacheWarmth::Cold => println!("fingerprint memo: cold start"),
            CacheWarmth::Stale { found_key } => println!(
                "fingerprint memo: stale (corpus key {found_key:#x} ≠ {corpus_key:#x}), cold start"
            ),
            CacheWarmth::Warm { entries } => {
                println!("fingerprint memo: warm start, {entries} entries preloaded")
            }
        }

        let name = format!("scan-chrome-{zone_tag}-{seed}");
        let run = supervisor
            .run(
                store,
                &name,
                || ChromeCampaign::new(population, &db, seed, model, Some(&cache), backend),
                resume,
            )
            .unwrap_or_else(|e| {
                eprintln!("chrome campaign failed: {e}");
                std::process::exit(1);
            });
        let ch = run.output;
        print!("{}", checkpoint_summary("chrome", &run.report));
        print!("{}", fetch_stats("chrome fetches", &ch.fetch));
        health.push(CampaignHealth::from_fetch("chrome", &ch.fetch));
        print_chrome_findings(&ch);

        println!(
            "fingerprint memo: {} entries, hit rate {:.1}% ({:.1}% warm, {:.1}% cold)",
            cache.entries(),
            cache.hit_rate() * 100.0,
            cache.warm_hit_rate() * 100.0,
            (cache.hit_rate() - cache.warm_hit_rate()) * 100.0,
        );
        match cache.save(store, "fingerprints", corpus_key) {
            Ok(bytes) => println!("fingerprint memo persisted ({bytes} bytes)"),
            Err(e) => eprintln!("could not persist fingerprint memo: {e}"),
        }
    } else {
        println!("(zone not part of the paper's Chrome measurement — §3.2 covers Alexa and .org)");
    }
    print!("{}", degradation_summary(&health));
}

fn cmd_attribute(args: &[String], resume: bool) {
    let days = arg_u64(args, 0, 7);
    let seed = arg_u64(args, 1, 2018);
    // MINEDIG_SHARDS fans each poll sweep across endpoints;
    // MINEDIG_ASYNC=1 instead holds every endpoint's fetch in flight at
    // once on one thread. Results are identical to sequential polling
    // either way.
    let poll_shards = ParallelExecutor::from_env().shards();
    let async_exec = std::env::var("MINEDIG_ASYNC")
        .is_ok()
        .then(AsyncExecutor::from_env);
    match &async_exec {
        Some(aexec) => println!(
            "simulating {days} days of Monero with an instrumented Coinhive-style pool \
             (async polling, {} in flight)…",
            aexec.concurrency()
        ),
        None => println!(
            "simulating {days} days of Monero with an instrumented Coinhive-style pool \
             ({poll_shards}-shard polling)…"
        ),
    }
    let mut config = ScenarioConfig {
        duration_days: days,
        seed,
        poll_shards,
        poll_async: async_exec.as_ref().map(|a| a.concurrency()),
        ..ScenarioConfig::default()
    };
    if let Some(plan) = FaultPlan::from_env() {
        println!("fault injection on (seed {})", plan.seed());
        config.poll_retry =
            minedig::primitives::retry::RetryPolicy::attempts(plan.attempts_to_clear());
        config.poll_faults = Some(plan);
    }
    // MINEDIG_HEALTH=1 interposes the endpoint-health layer (circuit
    // breakers, adaptive deadlines, hedged probes) between the poller
    // and the pool endpoints; fault-free results are bit-identical to
    // the plain run.
    if health_from_env() {
        println!("endpoint health layer on (breakers + adaptive deadlines + hedging)");
        config.poll_health = Some(HealthConfig {
            seed,
            ..HealthConfig::default()
        });
    }
    let endpoints = (config.pool.backends * config.pool.endpoints_per_backend) as u64;
    // MINEDIG_CKPT_DIR runs the §4.2 poll loop supervised: one item =
    // one block event, checkpoints every MINEDIG_CKPT_EVERY events,
    // --resume continues from the latest snapshot — bit-identical to
    // the unsupervised scenario.
    let result = if let Some(store) = ckpt_store() {
        let supervisor = supervisor_from_env();
        println!(
            "checkpointing to {} every {} block events{}",
            store.dir().display(),
            supervisor.policy().ckpt_every_items,
            if resume { ", resuming" } else { "" },
        );
        let name = format!("attribute-{days}-{seed}");
        let run = run_scenario_supervised(&config, &store, &name, &supervisor, resume)
            .unwrap_or_else(|e| {
                eprintln!("attribution campaign failed: {e}");
                std::process::exit(1);
            });
        print!("{}", checkpoint_summary("attribute", &run.report));
        run.output
    } else {
        run_scenario(config)
    };
    let ps = &result.poll_stats;
    println!(
        "polls: {} issued, {} answered, {} offline, {} retries, {} endpoint-sweeps down, \
         {} quarantined, {} shed",
        ps.polls, ps.answered, ps.offline, ps.retries, ps.endpoints_down, ps.quarantined, ps.sheds
    );
    if let Some(stats) = &result.poll_health_stats {
        print!("{}", health_summary("pool health", stats));
    }
    if let Some(stats) = &result.poll_async_stats {
        let sweeps = stats.tasks / endpoints.max(1);
        print!(
            "{}",
            async_poll_summary("pool polling (async)", sweeps, stats)
        );
    }
    let share = result.attributed.len() as f64 / result.total_blocks.max(1) as f64;
    println!(
        "blocks: {} total, {} attributed to the pool ({:.2}%, paper: 1.18%)",
        result.total_blocks,
        result.attributed.len(),
        share * 100.0
    );
    println!(
        "recall {:.1}% / precision {}",
        result.recall() * 100.0,
        if result.precise() { "exact" } else { "BUG" }
    );
    let revenue = pool_revenue(&result.attributed, ExchangeRate::paper_writing_time(), 0.30);
    println!(
        "revenue: {:.1} XMR ≈ {:.0} USD gross, pool keeps {:.0} USD (30%)",
        revenue.xmr, revenue.usd_gross, revenue.usd_pool_cut
    );
    print!(
        "{}",
        degradation_summary(&[CampaignHealth::from_polls("pool polling", ps)])
    );
}

fn cmd_shortlink(args: &[String], resume: bool) {
    let links = arg_u64(args, 0, 50_000);
    let seed = arg_u64(args, 1, 2018);
    let enum_shards = ParallelExecutor::from_env().shards();
    let config = StudyConfig {
        model: ModelConfig {
            total_links: links,
            users: 12_000.min(links as usize / 4).max(100),
            seed,
        },
        enum_shards,
        ..StudyConfig::default()
    };
    let study: StudyResult = if let Some(store) = ckpt_store() {
        let backend = Backend::from_env();
        let supervisor = supervisor_from_env();
        println!(
            "generating {links} short links; supervised enumeration ({} backend), \
             checkpointing to {} every {} items{}…",
            backend.label(),
            store.dir().display(),
            supervisor.policy().ckpt_every_items,
            if resume { ", resuming" } else { "" },
        );
        let name = format!("shortlink-{links}-{seed}");
        let run = run_study_supervised(&config, seed, &store, &name, &supervisor, backend, resume)
            .unwrap_or_else(|e| {
                eprintln!("shortlink campaign failed: {e}");
                std::process::exit(1);
            });
        print!("{}", checkpoint_summary("shortlink enum", &run.report));
        print!(
            "{}",
            degradation_summary(&[CampaignHealth::from_enumeration(
                "shortlink enum",
                &run.result.enumeration,
            )])
        );
        run.result
    } else if std::env::var("MINEDIG_ASYNC").is_ok() {
        let aexec = AsyncExecutor::from_env();
        println!(
            "generating {links} short links; async enumeration with up to \
             {} probes in flight…",
            aexec.concurrency()
        );
        let run = run_study_async(&config, seed, &aexec);
        print!("{}", async_stats("enumerate", &run.enum_stats));
        print!(
            "{}",
            degradation_summary(&[CampaignHealth::from_enumeration(
                "shortlink enum",
                &run.result.enumeration,
            )])
        );
        run.result
    } else if std::env::var("MINEDIG_STREAM").is_ok() {
        let pipe = PipelineExecutor::from_env();
        println!(
            "generating {links} short links; streaming enumerate→resolve \
             across {} pipeline workers…",
            pipe.workers()
        );
        let streamed = run_study_streaming(&config, seed, &pipe);
        print!("{}", pipeline_stats("enumerate", &streamed.enum_stats));
        println!(
            "resolver: {} links resolved concurrently, overlap with enumeration: {}",
            streamed.resolver.items,
            if streamed.overlapped() { "yes" } else { "no" }
        );
        print!(
            "{}",
            degradation_summary(&[CampaignHealth::from_enumeration(
                "shortlink enum",
                &streamed.result.enumeration,
            )])
        );
        streamed.result
    } else {
        println!(
            "generating {links} short links and enumerating the ID space \
             ({enum_shards}-shard probing)…"
        );
        run_study(&config, seed)
    };
    println!(
        "top-1 user owns {:.1}% of links; {} users own 85% (paper: 1/3 and 10)",
        study.top1_share * 100.0,
        study.users_for_85pct
    );
    println!(
        "unbiased requirements ≤1024 hashes: {:.1}% (paper: >2/3); resolution cost {:.1}M hashes",
        study.unbiased_le_1024 * 100.0,
        study.hashes_spent as f64 / 1e6
    );
    println!("top destinations of heavy users:");
    for (d, f) in study.top10_domains.iter().take(5) {
        println!("  {d:<24} {:>5.1}%", f * 100.0);
    }
}

fn cmd_hashrate() {
    println!("measuring local CryptoNight-style throughput…");
    for (label, variant, n) in [
        ("test (16 KiB)", Variant::Test, 64),
        ("lite (1 MiB)", Variant::Lite, 8),
        ("full (2 MiB)", Variant::Full, 4),
    ] {
        let sample = measure_hashrate(variant, n);
        println!("  {label:<14} {:>8.1} H/s", sample.rate());
    }
    println!("(the paper's browser anchor: 20 H/s on a 2013 laptop, 4 threads)");
}
