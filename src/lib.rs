//! # minedig
//!
//! A Rust reproduction of **“Digging into Browser-based Crypto Mining”**
//! (Jan Rüth, Torsten Zimmermann, Konrad Wolsing, Oliver Hohlfeld —
//! IMC 2018), built as a workspace of substrates plus the paper's three
//! methodologies. This umbrella crate re-exports every subsystem; see
//! `DESIGN.md` for the architecture and the per-experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! * [`primitives`] — Keccak/SHA-3, SHA-256, varints, deterministic RNG,
//!   statistics.
//! * [`pow`] — CryptoNight-style memory-hard proof of work.
//! * [`chain`] — Monero-style blockchain (blocks, tree-hash, difficulty,
//!   emission) and the statistical network simulator.
//! * [`net`] — JSON, WebSocket-style framing, channel and TCP transports.
//! * [`pool`] — the Coinhive-style pool (backends, job protocol, XOR blob
//!   obfuscation, 70/30 accounting) and miner client.
//! * [`wasm`] — a WebAssembly toolchain (encode/parse/validate/interpret),
//!   the ~160-build miner corpus and SHA-256 fingerprinting.
//! * [`browser`] — the instrumented headless-browser simulator with the
//!   paper's page-load policy.
//! * [`web`] — the calibrated synthetic web (zones, categories, miner
//!   deployment, page synthesis, churn).
//! * [`nocoin`] — the Adblock-Plus filter engine with a NoCoin snapshot.
//! * [`shortlink`] — the cnhv.co-style link-forwarding service and its
//!   enumeration/resolution tooling.
//! * [`analysis`] — pool-to-block attribution, estimators and calendars.
//! * [`core`] — the paper's pipelines as a public API.

pub use minedig_analysis as analysis;
pub use minedig_browser as browser;
pub use minedig_chain as chain;
pub use minedig_core as core;
pub use minedig_net as net;
pub use minedig_nocoin as nocoin;
pub use minedig_pool as pool;
pub use minedig_pow as pow;
pub use minedig_primitives as primitives;
pub use minedig_shortlink as shortlink;
pub use minedig_wasm as wasm;
pub use minedig_web as web;
