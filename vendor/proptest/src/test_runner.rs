//! Deterministic RNG, config, and case-level error type.

/// How a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is discarded.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("inputs rejected"),
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Applies the `PROPTEST_CASES` environment override to a configured
/// case count.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

/// Deterministic generator: splitmix64 seeded from the test's name, so
/// every run (and every CI machine) sees the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier (typically `module_path!::name`).
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name; any stable spread works here.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform integer in `[lo, hi]` (inclusive); spans up to 2^64.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as i128
    }

    /// Uniform float in `[0, 1]`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_tests_get_different_streams() {
        let a = TestRng::for_test("a").next_u64();
        let b = TestRng::for_test("b").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn int_in_covers_full_u64_domain() {
        let mut rng = TestRng::for_test("domain");
        let mut high = false;
        for _ in 0..200 {
            let v = rng.int_in(0, u64::MAX as i128) as u128 as u64;
            if v > u64::MAX / 2 {
                high = true;
            }
        }
        assert!(high, "upper half of u64 never sampled");
    }
}
