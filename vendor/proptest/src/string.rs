//! Regex-literal string strategies.
//!
//! Real proptest interprets `&str` strategies as full regexes. This
//! stand-in supports the shapes the workspace's tests actually use: a
//! sequence of atoms, where an atom is a character class `[...]` (with
//! ranges and backslash escapes), the "any printable" class `\PC`, or a
//! literal character, each optionally followed by a `{m,n}` or `{m}`
//! repetition.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

enum Atom {
    /// Fixed single character.
    Literal(char),
    /// One of an explicit set of characters.
    Class(Vec<char>),
    /// Any non-control character (`\PC`).
    AnyPrintable,
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                // `\PC` (not-a-control-char) or an escaped literal.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::AnyPrintable
                } else {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 2;
                    Atom::Literal(unescape(c))
                }
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // Range `a-z` when a dash sits between two members.
                    if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() && chars[i + 2] != ']'
                    {
                        let end = chars[i + 2];
                        for v in c as u32..=end as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern {pattern:?}"
                );
                i += 1; // closing ]
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(set)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m,n} / {m} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// A small non-ASCII sample so parsers meet multi-byte UTF-8.
const UNICODE_SAMPLE: [char; 8] = ['é', 'ß', 'λ', '→', '中', '‡', '𝒳', '🙂'];

fn generate_printable(rng: &mut TestRng) -> char {
    if rng.below(8) == 0 {
        UNICODE_SAMPLE[rng.below(UNICODE_SAMPLE.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap()
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                    Atom::AnyPrintable => out.push(generate_printable(rng)),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_escapes_and_specials() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..300 {
            let s = "[a-z0-9./:-]{1,40}".generate(&mut rng);
            assert!((1..=40).contains(&s.len()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "./:-".contains(c)));
        }
    }

    #[test]
    fn mixed_class_from_json_tests() {
        // The literal class used by the json roundtrip test, including
        // escaped backslash/quote and raw newline/tab/é.
        let mut rng = TestRng::for_test("json-class");
        for _ in 0..300 {
            let s = "[a-zA-Z0-9 \\\\\"\n\té]{0,20}".generate(&mut rng);
            assert!(s.chars().count() <= 20);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " \\\"\n\té".contains(c)));
        }
    }

    #[test]
    fn repetition_without_braces_is_one() {
        let mut rng = TestRng::for_test("single");
        assert_eq!("abc".generate(&mut rng), "abc");
    }

    #[test]
    fn printable_excludes_controls() {
        let mut rng = TestRng::for_test("printable");
        for _ in 0..500 {
            let s = "\\PC{0,400}".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 400);
        }
    }
}
