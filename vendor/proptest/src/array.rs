//! Fixed-size array strategies (`prop::array::uniform4` et al.).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `[S::Value; N]`, each element drawn independently.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fns {
    ($($name:ident => $n:literal),*) => {$(
        /// Generates arrays of the given arity from one element strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}
uniform_fns!(uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn uniform4_yields_four_elements() {
        let mut rng = TestRng::for_test("uniform4");
        let limbs: [u64; 4] = uniform4(any::<u64>()).generate(&mut rng);
        assert_eq!(limbs.len(), 4);
        // Vanishingly unlikely that all limbs collide.
        assert!(!(limbs[0] == limbs[1] && limbs[1] == limbs[2] && limbs[2] == limbs[3]));
    }
}
