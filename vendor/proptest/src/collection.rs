//! Collection strategies (`prop::collection::vec` / `btree_map`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` values.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Duplicate keys collapse, like real proptest's btree_map.
        for _ in 0..target {
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

/// Generates maps of `key` to `value` entries.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_bounds() {
        let mut rng = TestRng::for_test("vec");
        let s = vec(any::<u8>(), 3..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vec_and_fixed_size() {
        let mut rng = TestRng::for_test("nested");
        let s = vec(vec(any::<u8>(), 2usize), 4usize);
        let v = s.generate(&mut rng);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|inner| inner.len() == 2));
    }

    #[test]
    fn btree_map_size_is_bounded() {
        let mut rng = TestRng::for_test("map");
        let s = btree_map(any::<u8>(), any::<u64>(), 0..6);
        for _ in 0..100 {
            assert!(s.generate(&mut rng).len() < 6);
        }
    }
}
