//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic property-testing harness exposing the exact
//! API subset its tests use: the `proptest!` macro, `prop_assert*!` /
//! `prop_assume!`, `any::<T>()`, `Just`, range and tuple strategies,
//! `prop_oneof!`, `prop_map` / `prop_recursive`, `prop::collection::vec`
//! / `btree_map`, `prop::array::uniform4`, and regex-literal string
//! strategies of the `[class]{m,n}` / `\PC{m,n}` shape.
//!
//! Differences from real proptest: generation is seeded purely from the
//! test's module path (no OS entropy), there is no shrinking (the
//! failing inputs are printed verbatim instead), and regression files
//! are ignored. Case count defaults to 256 and can be overridden with
//! the `PROPTEST_CASES` environment variable.

pub mod array;
pub mod collection;
pub mod string;
pub mod test_runner;

pub mod strategy {
    //! Core strategy trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheap clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
        }

        /// Builds a recursive strategy: `recurse` receives the strategy
        /// for the next level down and wraps it one level up. `depth`
        /// bounds the nesting; the remaining parameters (accepted for
        /// API compatibility) are ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(current).boxed();
                let leaf = leaf.clone();
                current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    // Lean toward leaves so generated sizes stay tame.
                    if rng.below(3) == 0 {
                        branch.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                }));
            }
            current
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.int_in(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.int_in(*self.start() as i128, *self.end() as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(self.start as i128, <$t>::MAX as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if rng.next_u64() & 1 == 1 {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test expects in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias (`prop::collection`, `prop::array`).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, reporting the failing
/// inputs instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, "assertion failed: {:?} == {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: {:?} != {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current case (it does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = || {
                    let mut s = String::new();
                    $(s.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}; "),
                        &$arg
                    ));)+
                    s
                };
                let described = inputs();
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err($crate::test_runner::TestCaseError::Reject)) => {
                        rejected += 1;
                        assert!(
                            rejected < 4096,
                            "proptest {}: too many prop_assume! rejections",
                            stringify!($name)
                        );
                    }
                    Ok(Err($crate::test_runner::TestCaseError::Fail(message))) => {
                        panic!(
                            "proptest {} failed after {} cases: {}\n  inputs: {}",
                            stringify!($name),
                            accepted,
                            message,
                            described
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest {} panicked after {} cases; inputs: {}",
                            stringify!($name),
                            accepted,
                            described
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let x = (1u64..).generate(&mut rng);
            assert!(x >= 1);
        }
    }

    #[test]
    fn oneof_union_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        let s = prop_oneof![Just(1u8), (5u8..10).prop_map(|v| v * 2)];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (10..20).contains(&v), "{v}");
        }
    }

    #[test]
    fn string_patterns_generate_expected_shapes() {
        let mut rng = crate::test_runner::TestRng::for_test("strings");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let p = "\\PC{0,40}".generate(&mut rng);
            assert!(p.chars().count() <= 40);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut rng = crate::test_runner::TestRng::for_test("determinism");
            (0..32)
                .map(|_| any::<u64>().generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    proptest! {
        #[test]
        fn macro_end_to_end(a in 0u32..100, b in any::<bool>(), v in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(a < 100);
            prop_assume!(b || !b);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(a, 1000);
        }
    }
}
