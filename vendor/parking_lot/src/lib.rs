//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses: a `Mutex` whose `lock`
//! returns the guard directly (no poison `Result`). Backed by
//! `std::sync::Mutex`; a poisoned lock is recovered instead of
//! propagated, matching parking_lot's no-poisoning semantics.

pub use std::sync::MutexGuard;

/// A mutual-exclusion primitive with parking_lot's `lock() -> guard` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
