//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it actually uses: a growable `BytesMut` byte
//! buffer with front consumption (`advance`/`split_to`) and the `Buf` /
//! `BufMut` trait methods the codecs call. Byte-order semantics match
//! the real crate: `put_u16`/`put_u64` are big-endian, `put_u32_le` is
//! little-endian.

use std::ops::{Deref, DerefMut};

/// A growable buffer of bytes, consumable from the front.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.inner.len(), "split_to out of bounds");
        let head = self.inner.drain(..at).collect();
        BytesMut { inner: head }
    }

    /// Splits off and returns the bytes from `at` onward; `self` keeps
    /// the first `at` bytes.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.inner.len(), "split_off out of bounds");
        BytesMut {
            inner: self.inner.split_off(at),
        }
    }

    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> BytesMut {
        BytesMut {
            inner: slice.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.inner {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read access to a byte buffer, consumed from the front.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consumes a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.inner.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.inner
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.inner.len(), "advance out of bounds");
        self.inner.drain(..cnt);
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_consume_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32_le(0x04050607);
        b.put_u64(0x08090a0b0c0d0e0f);
        assert_eq!(
            &b[..],
            &[1, 2, 3, 7, 6, 5, 4, 8, 9, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f]
        );
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u16(), 0x0203);
        assert_eq!(b.get_u32_le(), 0x04050607);
        assert_eq!(b.get_u64(), 0x08090a0b0c0d0e0f);
        assert!(b.is_empty());
    }

    #[test]
    fn split_semantics() {
        let mut b = BytesMut::from(&b"abcdef"[..]);
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
        let tail = b.split_off(2);
        assert_eq!(&b[..], b"cd");
        assert_eq!(&tail[..], b"ef");
        b.advance(1);
        assert_eq!(b.to_vec(), b"d");
    }
}
