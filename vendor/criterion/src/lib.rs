//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput`, `bench_function`
//! / `bench_with_input`, `Bencher::iter` / `iter_batched`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple adaptive wall-clock loop (no statistics, no
//! reports on disk); each benchmark prints its mean time and, when a
//! throughput was declared, the derived rate. Good enough to compare
//! shard counts and spot regressions by eye.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Declared per-iteration workload, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// How `iter_batched` inputs are grouped; ignored by this stand-in.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Runs closures and records their mean wall-clock time.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, adaptively choosing an iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_millis(20) || iters >= 1 << 22 {
                self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 8;
        }
    }

    /// Times `routine` over inputs built (outside the timing) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut count = 0u64;
        while total < Duration::from_millis(20) && count < 100 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            count += 1;
        }
        self.mean_ns = total.as_nanos() as f64 / count as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { mean_ns: 0.0 };
    f(&mut bencher);
    let mut line = format!("{label:<48} time: [{}]", format_ns(bencher.mean_ns));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if bencher.mean_ns > 0.0 {
            let rate = count as f64 * 1e9 / bencher.mean_ns;
            line.push_str(&format!(" thrpt: [{}]", format_rate(rate, unit)));
        }
    }
    println!("{line}");
}

impl Criterion {
    /// Benchmarks one closure.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in sizes runs
    /// adaptively instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks one closure under this group.
    pub fn bench_function<'b>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.throughput, f);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| std::hint::black_box(41u64) + 1);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn batched_measures_routine_only() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter_batched(
            || vec![1u8; 1024],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function("inner", |b| b.iter(|| black_box(2u32) * 2));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &v| {
            b.iter(|| black_box(v) + 1)
        });
        g.finish();
    }
}
