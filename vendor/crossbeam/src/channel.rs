//! Bounded MPMC channels with crossbeam-compatible error types.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signalled when a message arrives or the last sender leaves.
    readable: Condvar,
    /// Signalled when space frees up or the last receiver leaves.
    writable: Condvar,
}

/// Creates a bounded channel holding at most `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity: cap.max(1),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Error for [`Sender::try_send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is full; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error for [`Sender::send`]: every receiver is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error for [`Sender::send_timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The timeout elapsed with the channel still full; the message is
    /// handed back.
    Timeout(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error for [`Receiver::recv`]: channel empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Channel empty and every sender is gone.
    Disconnected,
}

/// The sending half of a channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Sends without blocking, failing on a full or disconnected channel.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut s = self.chan.state.lock().unwrap();
        if s.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if s.queue.len() >= self.chan.capacity {
            return Err(TrySendError::Full(msg));
        }
        s.queue.push_back(msg);
        drop(s);
        self.chan.readable.notify_one();
        Ok(())
    }

    /// Sends, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut s = self.chan.state.lock().unwrap();
        loop {
            if s.receivers == 0 {
                return Err(SendError(msg));
            }
            if s.queue.len() < self.chan.capacity {
                s.queue.push_back(msg);
                drop(s);
                self.chan.readable.notify_one();
                return Ok(());
            }
            s = self.chan.writable.wait(s).unwrap();
        }
    }

    /// Sends, blocking at most `timeout` while the channel is full.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut s = self.chan.state.lock().unwrap();
        loop {
            if s.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            if s.queue.len() < self.chan.capacity {
                s.queue.push_back(msg);
                drop(s);
                self.chan.readable.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(msg));
            }
            let (guard, result) = self.chan.writable.wait_timeout(s, deadline - now).unwrap();
            s = guard;
            if result.timed_out() && s.queue.len() >= self.chan.capacity && s.receivers > 0 {
                return Err(SendTimeoutError::Timeout(msg));
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.chan.state.lock().unwrap().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.chan.state.lock().unwrap();
        s.senders -= 1;
        if s.senders == 0 {
            drop(s);
            self.chan.readable.notify_all();
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Receives, blocking until a message arrives or all senders are gone.
    ///
    /// Buffered messages are drained before disconnection is reported.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut s = self.chan.state.lock().unwrap();
        loop {
            if let Some(msg) = s.queue.pop_front() {
                drop(s);
                self.chan.writable.notify_one();
                return Ok(msg);
            }
            if s.senders == 0 {
                return Err(RecvError);
            }
            s = self.chan.readable.wait(s).unwrap();
        }
    }

    /// Receives, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.chan.state.lock().unwrap();
        loop {
            if let Some(msg) = s.queue.pop_front() {
                drop(s);
                self.chan.writable.notify_one();
                return Ok(msg);
            }
            if s.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self.chan.readable.wait_timeout(s, deadline - now).unwrap();
            s = guard;
            if result.timed_out() && s.queue.is_empty() && s.senders > 0 {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.chan.state.lock().unwrap().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.chan.state.lock().unwrap();
        s.receivers -= 1;
        if s.receivers == 0 {
            drop(s);
            self.chan.writable.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn drains_before_disconnect() {
        let (tx, rx) = bounded(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_timeout_expires_on_full_channel() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(5)),
            Err(SendTimeoutError::Timeout(2))
        );
        drop(rx);
        assert_eq!(
            tx.send_timeout(3, Duration::from_millis(5)),
            Err(SendTimeoutError::Disconnected(3))
        );
    }

    #[test]
    fn send_timeout_unblocks_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send_timeout(2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn cross_thread_traffic() {
        let (tx, rx) = bounded(8);
        let producer = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
