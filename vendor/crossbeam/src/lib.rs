//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it actually uses: `crossbeam::channel`'s
//! bounded MPMC channel with `try_send`, blocking `send`/`recv`, and
//! `recv_timeout`. Semantics match crossbeam's: a receiver drains
//! buffered messages even after every sender is dropped, and only then
//! reports disconnection.

pub mod channel;
